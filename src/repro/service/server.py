"""The resident compilation daemon (``repro serve``).

A :class:`ServiceServer` ties together the three service halves:

* an **asyncio listener** (:class:`~repro.service.aio.AsyncServerCore`)
  -- TCP or Unix domain (:func:`repro.service.protocol.parse_address`)
  speaking the NDJSON protocol.  Every client connection is a
  coroutine on one event-loop thread, so a single daemon holds
  thousands of idle connections without a thread each; followed
  result streams are woken through a queue-listener bridge instead of
  polling;
* a persistent :class:`~repro.service.queue.JobQueue` -- submissions
  survive restarts, crash recovery runs on startup, and (with
  ``completed_ttl``) finished submissions are garbage-collected by
  the maintenance loop;
* a pool of **leased workers** -- threads that lease jobs from the
  queue and execute them through the existing
  :class:`~repro.engine.CompilationEngine` (one engine per worker,
  sharing one program cache) with per-job retry-with-backoff and
  ``on_error="collect"``, so a failing job becomes an error record
  instead of a dead daemon.

A maintenance thread requeues expired leases, so a job whose worker
thread died (or whose previous daemon was SIGKILLed mid-compile)
re-runs instead of hanging its submission forever.

With ``announce`` the daemon periodically registers itself with a
fleet coordinator (:mod:`repro.service.coordinator`), so a fleet can
be grown by just starting more ``repro serve --announce`` processes.

Lifecycle: :meth:`start` binds the socket and spawns the threads;
:meth:`stop` (``drain=True``) stops accepting submissions, lets the
workers finish every queued job, then shuts the daemon down.  The
``shutdown`` protocol op triggers the same path remotely.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any

from ..engine.cache import DiskCache, MemoryCache, ProgramCache
from ..engine.cachestore import cache_stats_registry, make_cache
from ..engine.engine import CompilationEngine
from ..engine.shard import job_record
from ..obs.metrics import (
    MetricsRegistry,
    MetricsServer,
    render_prometheus_doc,
)
from ..obs.trace import Trace, rebase_spans
from ..engine.manifest import parse_manifest
from .aio import AsyncServerCore
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    error_reply,
    write_message_async,
)
from .queue import JobQueue, ManifestError, queue_wait_s
from .tenancy import (
    AuthContext,
    OPEN_CONTEXT,
    TenantRegistry,
    authorize_request,
    resolve_registry,
)

#: Idle-poll bounds for a followed result stream: the fallback timeout
#: starts snappy, doubles while nothing completes, and is capped so a
#: missed notification never stalls the stream for long.
RESULTS_POLL_MIN_S = 0.05
RESULTS_POLL_MAX_S = 2.0

#: Re-announce period of ``--announce`` self-registration; frequent
#: enough that a restarted coordinator re-learns its fleet quickly.
ANNOUNCE_INTERVAL_S = 5.0


def _parse_metrics_listen(spec: str) -> tuple[str, int]:
    """Parse a ``--metrics`` listen spec: ``HOST:PORT``, ``:PORT`` or
    a bare port (host defaults to loopback)."""
    spec = spec.strip()
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "", spec
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(
            f"bad metrics listen spec {spec!r}: expected HOST:PORT or PORT"
        ) from None


def _next_idle_timeout(current: float) -> float:
    """The idle-poll back-off ladder of a followed result stream.

    Queue changes wake the stream immediately through a listener; this
    timeout only bounds *missed* notifications, so it doubles from
    :data:`RESULTS_POLL_MIN_S` up to :data:`RESULTS_POLL_MAX_S` while
    the stream sits idle (progress resets it to the minimum).
    """
    return min(current * 2.0, RESULTS_POLL_MAX_S)


class ServiceServer(AsyncServerCore):
    """The resident compilation service (see module docstring).

    Args:
        queue_dir: Job-queue root; reusing a previous daemon's
            directory resumes its unfinished work.
        address: Listen address spec (``host:port`` or a Unix socket
            path).  TCP port ``0`` binds an ephemeral port --
            :attr:`address` carries the resolved spec after
            :meth:`start`.
        cache: Program cache shared by every worker -- a ready
            :class:`ProgramCache`, or a cache-spec string
            (``"disk:PATH"``, ``"remote:URL"``,
            ``"tiered:disk:PATH,remote:URL"``, ...) resolved through
            :func:`repro.engine.cachestore.make_cache`.  Defaults to
            ``DiskCache(cache_dir)`` when ``cache_dir`` is given, else
            an in-process :class:`MemoryCache`.
        cache_dir: Convenience for ``cache=DiskCache(cache_dir)``.
        workers: Leased-worker thread count.
        retries: Per-job extra compilation attempts
            (:class:`CompilationEngine` retry-with-backoff).
        backoff: Base backoff seconds between attempts.
        lease_seconds: Worker lease duration; an expired lease returns
            the job to the queue.
        completed_ttl: When set, the maintenance loop drops finished
            submissions older than this many seconds
            (:meth:`JobQueue.gc_completed`); live or leased jobs are
            never collected.
        announce: Coordinator address to self-register with
            (``repro serve --announce``); re-announced every
            :data:`ANNOUNCE_INTERVAL_S` so a coordinator restart
            re-learns this daemon.
        metrics_address: When set (``HOST:PORT``, ``:PORT`` or a bare
            port), serve the daemon's Prometheus exposition on a
            stdlib HTTP listener at ``GET /metrics``
            (:class:`repro.obs.metrics.MetricsServer`); the same state
            the ``metrics`` protocol op returns.
        max_line_bytes: Protocol line bound (oversized frames get a
            clean error instead of unbounded buffering).
        tenants: Tenants-file path or a ready
            :class:`~repro.service.tenancy.TenantRegistry`.  When set,
            the daemon enforces token auth, per-tenant namespaces,
            quotas and submit rate limits (protocol v2 required; see
            :mod:`repro.service.tenancy`); the maintenance loop hot
            reloads the file when its mtime changes.  ``None`` keeps
            today's open v1-compatible behaviour.
    """

    def __init__(
        self,
        queue_dir: str,
        address: str = "127.0.0.1:0",
        *,
        cache: ProgramCache | str | None = None,
        cache_dir: str | None = None,
        workers: int = 2,
        retries: int = 1,
        backoff: float = 0.1,
        lease_seconds: float = 300.0,
        completed_ttl: float | None = None,
        announce: str | None = None,
        metrics_address: str | None = None,
        max_line_bytes: int = MAX_LINE_BYTES,
        tenants: TenantRegistry | str | None = None,
    ) -> None:
        super().__init__(
            address,
            max_line_bytes=max_line_bytes,
            name="repro-service",
        )
        if workers < 1:
            raise ValueError("need at least one worker")
        if cache is None:
            cache = (
                DiskCache(cache_dir)
                if cache_dir is not None
                else MemoryCache()
            )
        elif isinstance(cache, str):
            cache = make_cache(cache)
        self.queue = JobQueue(queue_dir)
        self.cache = cache
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.lease_seconds = lease_seconds
        self.completed_ttl = completed_ttl
        self.announce = announce
        self.tenants = resolve_registry(tenants)
        self.metrics_address = metrics_address
        if metrics_address is not None:
            _parse_metrics_listen(metrics_address)  # validate eagerly
        self._metrics_http: MetricsServer | None = None
        # Per-daemon registry.  Event counters are incremented at the
        # instrument points (workers, submit); snapshot-style series
        # (queue depth, connections, cache counters) are synced in at
        # collection time, so a scrape always reads current state.
        self.metrics = MetricsRegistry()
        self._m_submissions = self.metrics.counter(
            "repro_submissions_total",
            "Manifest submissions accepted by this daemon.",
        )
        self._m_jobs_submitted = self.metrics.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted into the queue.",
        )
        self._m_jobs_completed = self.metrics.counter(
            "repro_jobs_completed_total",
            "Job outcome records written, by backend and status.",
            ("backend", "status"),
        )
        self._m_job_retries = self.metrics.counter(
            "repro_job_retries_total",
            "Compilation attempts beyond each job's first.",
            ("backend",),
        )
        self._m_queue_depth = self.metrics.gauge(
            "repro_queue_depth",
            "Jobs currently in each queue state.",
            ("state",),
        )
        self._m_queue_oldest = self.metrics.gauge(
            "repro_queue_oldest_age_seconds",
            "Age of the oldest still-queued job (admission backlog).",
        )
        self._m_connections = self.metrics.gauge(
            "repro_connections",
            "Protocol connections: open and peak gauges, total ever "
            "accepted.",
            ("kind",),
        )
        self._m_queue_wait = self.metrics.histogram(
            "repro_queue_wait_seconds",
            "Seconds between enqueue and a worker lease.",
        )
        self._m_pass_duration = self.metrics.histogram(
            "repro_pass_duration_seconds",
            "Per-pass compile seconds (fresh compilations only).",
            ("pass",),
        )
        # Per-tenant families (only ever labelled when a tenants file
        # is in force; fleet-summed like every other family).
        self._m_tenant_submissions = self.metrics.counter(
            "repro_tenant_submissions_total",
            "Manifest submissions accepted, by tenant.",
            ("tenant",),
        )
        self._m_tenant_jobs_completed = self.metrics.counter(
            "repro_tenant_jobs_completed_total",
            "Job outcome records written, by tenant and status.",
            ("tenant", "status"),
        )
        self._m_tenant_throttles = self.metrics.counter(
            "repro_tenant_throttles_total",
            "Submissions rejected by tenancy enforcement, by tenant "
            "and reason (rate_limit/queued_quota/submission_quota).",
            ("tenant", "reason"),
        )
        self._m_tenant_quota_util = self.metrics.gauge(
            "repro_tenant_quota_utilization",
            "Fraction of a tenant's quota in use (queued/running), "
            "synced at scrape time.",
            ("tenant", "quota"),
        )
        self._threads: list[threading.Thread] = []
        # Jobs currently executing on this daemon's worker threads
        # (worker id -> job id); the maintenance thread heartbeats
        # their leases so healthy long compiles never expire.
        self._active_lock = threading.Lock()
        self._active_jobs: dict[str, str] = {}
        self._started = threading.Event()
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self.started_at = time.time()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ServiceServer":
        """Recover the queue, bind the socket, spawn the threads."""
        recovered = self.queue.recover()
        if recovered:
            self._log(
                f"recovered {len(recovered)} job(s) from a previous run"
            )
        self.start_listener()
        self._threads = [
            threading.Thread(
                target=self._maintenance_loop,
                name="repro-service-maintenance",
                daemon=True,
            ),
        ]
        self._threads += [
            threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{number}",),
                name=f"repro-service-worker-{number}",
                daemon=True,
            )
            for number in range(1, self.workers + 1)
        ]
        if self.announce is not None:
            self._threads.append(
                threading.Thread(
                    target=self._announce_loop,
                    name="repro-service-announce",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()
        if self.metrics_address is not None:
            host, port = _parse_metrics_listen(self.metrics_address)
            self._metrics_http = MetricsServer(
                self._render_metrics, host=host, port=port
            ).start()
            self._log(f"metrics at {self._metrics_http.url}")
        self._started.set()
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the daemon down.

        Args:
            drain: Refuse new submissions, finish every queued job,
                then stop.  ``False`` stops after at most the
                in-flight jobs (leased work completes; queued work
                stays queued on disk for the next daemon).
            timeout: Bound on the drain wait.
        """
        self._draining.set()
        if drain:
            self.queue.wait(
                lambda: self.queue.unfinished() == 0, timeout=timeout
            )
        self._stopping.set()
        # Wake idle workers and followed result streams so they see
        # the stop flag.
        self.queue.poke()
        self.stop_listener()
        if self._metrics_http is not None:
            self._metrics_http.stop()
            self._metrics_http = None
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        try:
            # Deferred write-back cache entries must survive the
            # daemon.  Workers flush on their own way out too (a slow
            # compile can outlive the bounded join above), so this is
            # the last flush, not the only one.
            self.cache.flush()
        finally:
            self._stopped.set()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        """Block until the daemon has fully stopped."""
        return self._stopped.wait(timeout)

    @property
    def draining(self) -> bool:
        """Whether the daemon has stopped accepting submissions."""
        return self._draining.is_set()

    @property
    def metrics_url(self) -> str | None:
        """The ``GET /metrics`` URL, when the listener is running."""
        http = self._metrics_http
        return None if http is None else http.url

    def _log(self, message: str) -> None:
        # Single seam for daemon logging; the CLI wires it to stderr.
        print(f"repro-service: {message}", flush=True)

    # -- workers -------------------------------------------------------

    def _worker_loop(self, worker_id: str) -> None:
        engine = CompilationEngine(
            cache=self.cache,
            workers=1,
            on_error="collect",
            retries=self.retries,
            backoff=self.backoff,
        )
        try:
            while not self._stopping.is_set():
                record = self.queue.lease(
                    worker_id,
                    lease_seconds=self.lease_seconds,
                    running_caps=self._running_caps(),
                )
                if record is None:
                    with self.queue.changed:
                        if self._stopping.is_set():
                            return
                        self.queue.changed.wait(timeout=0.2)
                    continue
                with self._active_lock:
                    self._active_jobs[worker_id] = record["id"]
                try:
                    self._execute(engine, record, worker_id)
                finally:
                    with self._active_lock:
                        self._active_jobs.pop(worker_id, None)
        finally:
            # A compile outliving stop()'s bounded join would finish
            # *after* the shutdown flush; pushing this worker's own
            # deferred write-backs on the way out closes that window.
            try:
                self.cache.flush()
            except Exception as exc:  # never kill the thread teardown
                self._log(f"{worker_id}: exit cache flush failed: {exc}")

    def _running_caps(self) -> dict[str, int] | None:
        """Per-tenant ``max_running_jobs`` caps for the lease call."""
        if self.tenants is None:
            return None
        return {
            tenant.name: tenant.max_running_jobs
            for tenant in self.tenants.tenants().values()
            if tenant.max_running_jobs is not None
        }

    def _execute(
        self,
        engine: CompilationEngine,
        record: dict[str, Any],
        worker_id: str = "",
    ) -> None:
        """Run one leased job: trace it, meter it, complete it.

        The job's :class:`~repro.obs.trace.Trace` origin is back-dated
        to the enqueue instant (the lease's wall/monotonic clock pair
        anchors the rebasing), so offset ``0.0`` starts the queue-wait
        span and the engine's perf-counter spans land after it on one
        timeline.  The finished ``trace-v1`` document rides on the
        result record (volatile: ``strip_timing`` removes it).
        """
        lease_wall = time.time()
        lease_mono = time.perf_counter()
        job_doc = record.get("job", {})
        backend = (
            job_doc.get("backend") or job_doc.get("scenario") or "unknown"
        )
        enqueued = record.get("enqueued_at")
        queue_wait = (
            max(0.0, lease_wall - enqueued)
            if enqueued is not None
            else 0.0
        )
        trace = Trace(
            "job",
            attrs={
                "benchmark": job_doc.get("benchmark"),
                "backend": backend,
                "worker": worker_id,
            },
            origin=lease_mono - queue_wait,
        )
        trace.add_span("queue.wait", 0.0, queue_wait)
        result = None
        try:
            job = self.queue.compile_job(record)
            [result] = engine.run([job])
            result_record = job_record(result, record["index"])
        except Exception as exc:  # defensive: keep the worker alive
            result_record = {
                "index": record["index"],
                "status": "error",
                "benchmark": record["job"].get("benchmark"),
                "scenario": record["job"].get(
                    "scenario", record["job"].get("backend")
                ),
                "seed": record["job"].get("seed", 0),
                "num_aods": record["job"].get("num_aods", 1),
                "cache_key": record["cache_key"],
                "cache_hit": False,
                "compile_time_s": 0.0,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                },
            }
        if result is not None:
            # Service engines are always serial (workers=1), so the
            # engine recorded raw perf-counter spans; shift them onto
            # the job timeline.
            rebase_spans(
                result.stats.get("spans") or (),
                trace,
                trace.root,
                trace.offset_of(0.0),
            )
        status = result_record.get("status", "error")
        self._m_jobs_completed.inc(backend=backend, status=status)
        if record.get("tenant"):
            self._m_tenant_jobs_completed.inc(
                tenant=record["tenant"], status=status
            )
        attempts = result_record.get("attempts", 1)
        if attempts > 1:
            self._m_job_retries.inc(attempts - 1, backend=backend)
        self._m_queue_wait.observe(queue_wait)
        if result is not None and result.ok and not result.cache_hit:
            for name, duration in result.stats.get(
                "pass_timings", {}
            ).items():
                self._m_pass_duration.observe(
                    float(duration), **{"pass": name}
                )
        result_record["trace"] = trace.to_doc(job=record["id"])
        self.queue.complete(record["id"], result_record)

    def _maintenance_loop(self) -> None:
        interval = min(max(self.lease_seconds / 4.0, 0.05), 15.0)
        if self.completed_ttl is not None:
            # The sweep cadence bounds the TTL's resolution: a short
            # TTL must not wait out a long lease-derived interval.
            interval = min(
                interval, max(self.completed_ttl / 2.0, 0.05)
            )
        while not self._stopping.wait(timeout=interval):
            # Heartbeat first: a job still executing on a live worker
            # thread must never lose its lease, no matter how long the
            # compile runs relative to --lease.
            with self._active_lock:
                active = list(self._active_jobs.values())
            for job_id in active:
                self.queue.renew(job_id, self.lease_seconds)
            expired = self.queue.requeue_expired()
            if expired:
                self._log(
                    f"requeued {len(expired)} expired lease(s): "
                    + ", ".join(expired)
                )
            if self.completed_ttl is not None:
                removed = self.queue.gc_completed(self.completed_ttl)
                if removed:
                    self._log(
                        f"gc: dropped {len(removed)} expired "
                        "submission(s): " + ", ".join(removed)
                    )
            # Push write-back-deferred cache entries downstream (no-op
            # for every non-write-back cache).
            self.cache.flush()
            # Hot reload: a touched tenants file takes effect within
            # one sweep (SIGHUP, handled in the CLI, is immediate).
            if self.tenants is not None and self.tenants.maybe_reload():
                self._log(
                    f"tenants file {self.tenants.path} reloaded "
                    f"({len(self.tenants.tenants())} tenant(s))"
                )

    def _announce_loop(self) -> None:
        # Imported here: client.py has no dependency on the server
        # module, keep it one-directional.
        from .client import ServiceClient, ServiceError

        assert self.announce is not None
        client = ServiceClient(
            self.announce,
            timeout=5.0,
            connect_retry_s=1.0,
            # A tenanted coordinator only accepts registrations from
            # fleet members; present the shared fleet token.
            token=(
                self.tenants.fleet_token
                if self.tenants is not None
                else None
            ),
        )
        registered = False
        while not self._stopping.is_set():
            try:
                client.register(self.address)
                if not registered:
                    self._log(f"registered with {self.announce}")
                registered = True
            except ServiceError as exc:
                if registered:
                    self._log(
                        f"re-announce to {self.announce} failed: {exc}"
                    )
                registered = False
            if self._stopping.wait(timeout=ANNOUNCE_INTERVAL_S):
                return

    # -- protocol dispatch ---------------------------------------------

    async def dispatch_async(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request; ``False`` ends the connection.

        ``ping`` is always answered (liveness must precede auth);
        every other op first passes the tenancy front door
        (:func:`~repro.service.tenancy.authorize_request`), which is a
        no-op yielding an all-seeing context on an open daemon.
        """
        op = request.get("op")
        if op == "ping":
            # Off the loop thread: the cache stats snapshot can briefly
            # block behind a write-back flush holding the stats lock.
            reply = await asyncio.to_thread(self._ping)
            await write_message_async(writer, reply)
            return True
        ctx, err = authorize_request(self.tenants, request)
        if err is not None:
            await write_message_async(writer, err)
            return True
        if op == "metrics":
            reply = await asyncio.to_thread(self._metrics)
            await write_message_async(writer, reply)
            return True
        if op == "trace":
            await write_message_async(writer, self._trace(request, ctx))
            return True
        if op == "submit":
            # Manifest expansion + cache-key hashing can be slow for
            # big manifests: keep it off the event loop.
            reply = await asyncio.to_thread(self._submit, request, ctx)
            await write_message_async(writer, reply)
            return True
        if op == "status":
            await write_message_async(writer, self._status(request, ctx))
            return True
        if op == "results":
            await self._results(request, writer, ctx)
            return True
        if op == "shutdown":
            if not ctx.admin:
                await write_message_async(
                    writer,
                    error_reply(
                        "forbidden",
                        "shutdown requires the admin capability",
                    ),
                )
                return True
            drain = bool(request.get("drain", True))
            await write_message_async(
                writer, {"ok": True, "op": "shutdown", "drain": drain}
            )
            # Stop from a fresh thread: stop() joins the listener loop
            # this very coroutine runs on.
            threading.Thread(
                target=self.stop,
                kwargs={"drain": drain},
                name="repro-service-shutdown",
                daemon=True,
            ).start()
            return False
        await write_message_async(
            writer,
            error_reply("unknown_op", f"unknown op {op!r}"),
        )
        return True

    def _ping(self) -> dict[str, Any]:
        return {
            "ok": True,
            "op": "ping",
            "protocol": PROTOCOL_VERSION,
            "role": "daemon",
            "address": self.address,
            "workers": self.workers,
            "draining": self.draining,
            "uptime_s": time.time() - self.started_at,
            "counts": self.queue.counts(),
            "connections": self.connection_stats(),
            "cache": self.cache.stats_doc(),
            "metrics_url": self.metrics_url,
            "auth_required": self.tenants is not None,
        }

    def _metrics_doc(self) -> dict[str, Any]:
        """The daemon's full metrics document (scrape-time snapshot).

        Syncs the snapshot-style gauges (queue depth, backlog age,
        connection stats) into the registry, then merges in the cache
        counters (:func:`cache_stats_registry`) so one document covers
        the whole daemon.
        """
        for state, value in self.queue.counts().items():
            self._m_queue_depth.set(value, state=state)
        self._m_queue_oldest.set(self.queue.oldest_queued_age())
        for kind, value in self.connection_stats().items():
            self._m_connections.set(value, kind=kind)
        if self.tenants is not None:
            for tenant in self.tenants.tenants().values():
                counts = self.queue.counts(tenant=tenant.name)
                if tenant.max_queued_jobs is not None:
                    self._m_tenant_quota_util.set(
                        (counts["queued"] + counts["running"])
                        / tenant.max_queued_jobs,
                        tenant=tenant.name,
                        quota="queued",
                    )
                if tenant.max_running_jobs is not None:
                    self._m_tenant_quota_util.set(
                        counts["running"] / tenant.max_running_jobs,
                        tenant=tenant.name,
                        quota="running",
                    )
        return MetricsRegistry.from_docs(
            [
                self.metrics.to_doc(),
                cache_stats_registry(self.cache).to_doc(),
            ]
        ).to_doc()

    def _render_metrics(self) -> str:
        return render_prometheus_doc(self._metrics_doc())

    def _metrics(self) -> dict[str, Any]:
        doc = self._metrics_doc()
        return {
            "ok": True,
            "op": "metrics",
            "role": "daemon",
            "address": self.address,
            "metrics": doc,
            "text": render_prometheus_doc(doc),
        }

    def _trace(
        self, request: dict[str, Any], ctx: AuthContext = OPEN_CONTEXT
    ) -> dict[str, Any]:
        job_id = request.get("job")
        if not job_id:
            return error_reply("bad_request", "trace needs a 'job' id")
        record = self.queue.get(job_id)
        if record is None or not ctx.can_see(record.get("tenant")):
            return error_reply("not_found", f"unknown job {job_id!r}")
        trace_doc = (record.get("record") or {}).get("trace")
        if trace_doc is None:
            return error_reply(
                "not_found",
                f"job {job_id} has no trace yet "
                f"(status {record['status']!r})",
            )
        return {
            "ok": True,
            "op": "trace",
            "job": job_id,
            "status": record["status"],
            "trace": trace_doc,
        }

    def _check_tenant_submit(
        self, ctx: AuthContext, num_jobs: int
    ) -> dict[str, Any] | None:
        """Tenancy admission control for one submit: rate limit, then
        per-submission size quota, then outstanding-jobs quota.
        Returns an error reply, or ``None`` to admit.

        Fleet contexts bypass admission: a coordinator leg arriving
        with the fleet token was already admitted at the fleet front
        door, and re-charging the tenant's rate bucket (or re-checking
        a per-daemon slice of its global quota) for internal dispatch,
        stealing or loss re-dispatch would throttle work the client
        was told was accepted."""
        tenant = ctx.tenant
        if tenant is None or ctx.fleet or self.tenants is None:
            return None
        retry_after = self.tenants.acquire_submit(tenant)
        if retry_after > 0.0:
            self._m_tenant_throttles.inc(
                tenant=tenant.name, reason="rate_limit"
            )
            return error_reply(
                "rate_limited",
                f"tenant {tenant.name!r} exceeded its submit rate; "
                f"retry in {retry_after:.3f}s",
                retry_after_s=round(retry_after, 3),
            )
        cap = tenant.max_jobs_per_submission
        if cap is not None and num_jobs > cap:
            self._m_tenant_throttles.inc(
                tenant=tenant.name, reason="submission_quota"
            )
            return error_reply(
                "quota_exceeded",
                f"submission has {num_jobs} jobs; tenant "
                f"{tenant.name!r} is limited to {cap} per submission",
            )
        cap = tenant.max_queued_jobs
        if cap is not None:
            counts = self.queue.counts(tenant=tenant.name)
            outstanding = counts["queued"] + counts["running"]
            if outstanding + num_jobs > cap:
                self._m_tenant_throttles.inc(
                    tenant=tenant.name, reason="queued_quota"
                )
                return error_reply(
                    "quota_exceeded",
                    f"tenant {tenant.name!r} has {outstanding} "
                    f"outstanding job(s); {num_jobs} more would exceed "
                    f"its quota of {cap}",
                )
        return None

    def _submit(
        self, request: dict[str, Any], ctx: AuthContext = OPEN_CONTEXT
    ) -> dict[str, Any]:
        if self.draining:
            return error_reply(
                "draining",
                "service is draining; not accepting submissions",
            )
        manifest_doc = request.get("manifest")
        if manifest_doc is None:
            return error_reply("bad_request", "submit needs a 'manifest'")
        priority = request.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            return error_reply(
                "bad_request", "'priority' must be an integer"
            )
        try:
            num_jobs = len(parse_manifest(manifest_doc))
        except ManifestError as exc:
            return error_reply("bad_request", f"bad manifest: {exc}")
        rejection = self._check_tenant_submit(ctx, num_jobs)
        if rejection is not None:
            return rejection
        try:
            submission = self.queue.submit(
                manifest_doc, priority=priority, tenant=ctx.name
            )
        except ManifestError as exc:
            return error_reply("bad_request", f"bad manifest: {exc}")
        self._m_submissions.inc()
        self._m_jobs_submitted.inc(submission["total_jobs"])
        if ctx.name is not None and not ctx.fleet:
            # Fleet legs are not client submissions: the coordinator
            # counted the submission once at its own front door, and
            # the fleet metrics view sums both registries.
            self._m_tenant_submissions.inc(tenant=ctx.name)
        return {
            "ok": True,
            "op": "submit",
            "submission": submission["id"],
            "tenant": ctx.name,
            "manifest_digest": submission["manifest_digest"],
            "total_jobs": submission["total_jobs"],
            "job_ids": submission["job_ids"],
        }

    def _status(
        self, request: dict[str, Any], ctx: AuthContext = OPEN_CONTEXT
    ) -> dict[str, Any]:
        sub_id = request.get("submission")
        if sub_id is None:
            visible = [
                sid
                for sid in self.queue.submission_ids()
                if ctx.can_see(self.queue.submission(sid).get("tenant"))
            ]
            submissions = [
                {
                    "id": sid,
                    "total_jobs": self.queue.submission(sid)["total_jobs"],
                    "counts": self.queue.counts(sid),
                }
                for sid in visible
            ]
            return {
                "ok": True,
                "op": "status",
                "draining": self.draining,
                "counts": (
                    self.queue.counts()
                    if ctx.fleet
                    else self.queue.counts(tenant=ctx.name)
                ),
                "submissions": submissions,
            }
        submission = self.queue.submission(sub_id)
        if submission is None or not ctx.can_see(submission.get("tenant")):
            # A foreign tenant's submission answers exactly like a
            # nonexistent one: the namespace must not leak ids.
            return error_reply(
                "not_found", f"unknown submission {sub_id!r}"
            )
        jobs = []
        for record in self.queue.records_for(sub_id):
            outcome = record.get("record") or {}
            trace_doc = outcome.get("trace")
            jobs.append(
                {
                    "id": record["id"],
                    "index": record["index"],
                    "status": record["status"],
                    # Attempts are known once an outcome exists (absent
                    # on the record means a single attempt sufficed).
                    "attempts": (
                        outcome.get("attempts", 1) if outcome else None
                    ),
                    "queue_wait_s": queue_wait_s(record),
                    "span_time_s": (
                        trace_doc.get("duration_s")
                        if isinstance(trace_doc, dict)
                        else None
                    ),
                }
            )
        return {
            "ok": True,
            "op": "status",
            "submission": sub_id,
            "manifest_digest": submission["manifest_digest"],
            "total_jobs": submission["total_jobs"],
            "counts": self.queue.counts(sub_id),
            "jobs": jobs,
        }

    async def _results(
        self,
        request: dict[str, Any],
        writer: asyncio.StreamWriter,
        ctx: AuthContext = OPEN_CONTEXT,
    ) -> None:
        """Stream a submission's records in completion order.

        With ``follow`` the stream stays open until every job has
        finished; without, it ends after the records finished so far.
        While following, a queue listener wakes this coroutine through
        ``call_soon_threadsafe`` on every completion, so records flow
        the moment they exist; the idle timeout only bounds missed
        notifications (:func:`_next_idle_timeout`).
        """
        sub_id = request.get("submission")
        submission = (
            None if sub_id is None else self.queue.submission(sub_id)
        )
        if submission is None or not ctx.can_see(submission.get("tenant")):
            await write_message_async(
                writer,
                error_reply(
                    "not_found", f"unknown submission {sub_id!r}"
                ),
            )
            return
        follow = bool(request.get("follow", False))
        total = submission["total_jobs"]
        await write_message_async(
            writer,
            {
                "ok": True,
                "event": "start",
                "submission": sub_id,
                "manifest_digest": submission["manifest_digest"],
                "total_jobs": total,
            },
        )
        sent = 0
        failed = 0
        idle_timeout = RESULTS_POLL_MIN_S
        loop = asyncio.get_running_loop()
        changed = asyncio.Event()

        def wake() -> None:
            loop.call_soon_threadsafe(changed.set)

        self.queue.add_listener(wake)
        try:
            while True:
                # Flush everything completed so far *before* any exit
                # check, so records finishing during the wait below
                # are never dropped by a shutdown.
                completed = self.queue.completed_records(sub_id)
                if len(completed) > sent:
                    idle_timeout = RESULTS_POLL_MIN_S  # progress
                for record in completed[sent:]:
                    if record["record"].get("status") == "error":
                        failed += 1
                    await write_message_async(
                        writer,
                        {
                            "ok": True,
                            "event": "record",
                            "job_id": record["id"],
                            "record": record["record"],
                        },
                    )
                sent = len(completed)
                if sent >= total or not follow:
                    break
                if (
                    self._stopping.is_set()
                    and self.queue.unfinished(sub_id)
                ):
                    break  # going down with work left: end honestly
                changed.clear()
                # Re-check after clearing: a completion between the
                # scan above and the clear would otherwise be missed
                # until the idle timeout.
                if (
                    self.queue.completed_count(sub_id) > sent
                    or self._stopping.is_set()
                ):
                    continue
                try:
                    await asyncio.wait_for(
                        changed.wait(), timeout=idle_timeout
                    )
                except asyncio.TimeoutError:
                    idle_timeout = _next_idle_timeout(idle_timeout)
        finally:
            self.queue.remove_listener(wake)
        await write_message_async(
            writer,
            {
                "ok": True,
                "event": "end",
                "submission": sub_id,
                "num_done": sent,
                "num_failed": failed,
                "remaining": total - sent,
                "wall_time_s": time.time() - submission["submitted_at"],
            },
        )


__all__ = ["ServiceServer"]
