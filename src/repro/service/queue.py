"""Persistent on-disk job queue of the compilation service.

One :class:`JobQueue` owns a directory::

    <dir>/submissions/<sub-id>.json   one document per accepted manifest
    <dir>/jobs/<job-id>.json          one document per expanded job
    <dir>/submissions/<tenant>/...    tenant-namespaced submissions
    <dir>/jobs/<tenant>/...           tenant-namespaced jobs

Every document is written atomically (temp file + rename), so the
queue survives a daemon crash at any instant: on reopen,
:meth:`JobQueue.recover` returns every job the dead process was
running back to ``queued`` (its attempts so far are kept) and nothing
already ``done`` re-runs.

Job records carry the :func:`repro.engine.jobs.job_to_doc` form of the
job plus its scheduling state::

    {"format": "repro-service-job", "version": 1,
     "id": "s000001-00003", "submission": "s000001", "index": 3,
     "tenant": "acme" | null,
     "priority": 0, "seq": 17,
     "status": "queued" | "running" | "done" | "error",
     "cache_key": <64-hex job_cache_key>,
     "job": {<job_to_doc>},
     "lease": {"worker": ..., "expires_at": ...} | null,
     "requeues": 0,
     "enqueued_at": <unix seconds>, "first_leased_at": <...> | null,
     "completed_seq": 5 | null,
     "record": {<job_record, schema v2>} | null}

The two wall-clock stamps feed observability: ``first_leased_at -
enqueued_at`` is the job's queue wait (:func:`queue_wait_s`), surfaced
as the ``queue-wait`` trace span, the ``repro_queue_wait_seconds``
histogram and the ``repro status`` detail; ``first_leased_at`` survives
requeues (first value wins) so the wait reflects the original
admission, not the latest crash recovery.

**Tenancy.**  A submission made on behalf of a tenant carries the
tenant's name on its submission document and every job record
(``"tenant"``; ``None``/absent means the default, un-tenanted
namespace — records written by older daemons read back exactly so).
Tenanted documents live under per-tenant subdirectories and their ids
are prefixed (``acme-s000001``), so two tenants' ids can never
collide and an operator can ``ls`` one tenant's work.

Scheduling is priority-then-FIFO with **fair-share interleaving**
across tenants: :meth:`lease` hands out the queued job with the
highest ``priority``; among equal priorities, the tenant that has
been granted the fewest leases since this process started goes first
(ties: lowest submission ``seq``, then manifest ``index``).  A tenant
that floods the queue therefore shares the worker pool round-robin
with everyone else instead of starving them.  Work is **deduplicated by cache key**: two
queued jobs with the same content-addressed key are never leased
concurrently, so the first compiles while the second waits and is then
served from the shared program cache in microseconds -- the queue
plus cache together guarantee each distinct compilation runs once per
cache lifetime, no matter how many submissions ask for it.

Leases expire: the daemon heartbeats (:meth:`renew`) every job its
live worker threads are executing, so only a worker that stops
heartbeating (crashed thread, SIGKILLed daemon) loses its job to
:meth:`requeue_expired` -- bounded by ``max_requeues`` so a job that
kills its worker cannot cycle forever.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Any, Callable

from ..engine.cache import job_cache_key
from ..engine.jobs import CompileJob, job_from_doc, job_to_doc
from ..engine.manifest import (
    ManifestError,
    manifest_digest,
    parse_manifest,
)

#: Schema identity of queue documents.
JOB_RECORD_FORMAT = "repro-service-job"
SUBMISSION_FORMAT = "repro-service-submission"
QUEUE_SCHEMA_VERSION = 1

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "error")

#: Crash-requeue bound: a job whose worker dies mid-run re-enters the
#: queue at most this many times before it is recorded as an error.
DEFAULT_MAX_REQUEUES = 3


class QueueError(RuntimeError):
    """Raised on structurally invalid queue operations or documents."""


#: Sentinel distinguishing "no tenant filter" from "the default
#: (None) tenant namespace" in :meth:`JobQueue.counts`.
_UNFILTERED = object()


def _atomic_write(path: str, doc: dict[str, Any]) -> None:
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def queue_wait_s(record: dict[str, Any]) -> float | None:
    """Seconds a job record spent queued before its first lease.

    ``None`` while the job is still waiting (or for records from
    queues written before the timestamps existed).
    """
    enqueued = record.get("enqueued_at")
    leased = record.get("first_leased_at")
    if enqueued is None or leased is None:
        return None
    return max(0.0, leased - enqueued)


class JobQueue:
    """Crash-safe priority queue of compilation jobs (see module doc).

    Thread-safe: every method may be called from any thread; state
    changes broadcast on :attr:`changed`, so streamers can wait for
    completions without polling the disk.

    Args:
        directory: Queue root (created on first use).
        max_requeues: Crash-requeue bound per job.
    """

    def __init__(
        self,
        directory: str,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
    ) -> None:
        self.directory = directory
        self.max_requeues = max_requeues
        self._jobs_dir = os.path.join(directory, "jobs")
        self._subs_dir = os.path.join(directory, "submissions")
        os.makedirs(self._jobs_dir, exist_ok=True)
        os.makedirs(self._subs_dir, exist_ok=True)
        self._lock = threading.RLock()
        #: Notified on every job state change (lease, completion,
        #: requeue, submission).
        self.changed = threading.Condition(self._lock)
        # Callbacks invoked (with the lock held) on every change
        # broadcast -- the bridge that lets the asyncio front end wake
        # a followed result stream from a worker thread via
        # ``loop.call_soon_threadsafe`` without polling.
        self._listeners: list[Callable[[], None]] = []
        self._records: dict[str, dict[str, Any]] = {}
        self._submissions: dict[str, dict[str, Any]] = {}
        # Leases granted per tenant since startup -- the fair-share
        # interleaving key.  In-memory by design: fairness is a
        # scheduling concern of the live process, not queue state.
        self._lease_grants: dict[str | None, int] = {}
        # Highest submission seq ever seen, GC'd ones included: a
        # collected submission's id must not be handed to a later
        # submit() while this process lives.
        self._seq_floor = 0
        self._load()

    # -- change notification -------------------------------------------

    def add_listener(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` on every queue change (any thread).

        Callbacks run under the queue lock and must be cheap and
        non-blocking (e.g. ``loop.call_soon_threadsafe(event.set)``);
        exceptions are swallowed so one broken listener cannot wedge
        the queue.
        """
        with self._lock:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[], None]) -> None:
        """Detach a listener registered with :meth:`add_listener`."""
        with self._lock:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

    def _notify_all(self) -> None:
        # Caller holds the lock.
        self.changed.notify_all()
        for callback in list(self._listeners):
            try:
                callback()
            except Exception:
                pass

    def poke(self) -> None:
        """Wake every waiter and listener without a state change.

        Used by daemon shutdown: idle workers and followed result
        streams block on :attr:`changed` / their listeners and must
        re-check the stop flag even though no job changed.
        """
        with self.changed:
            self._notify_all()

    # -- persistence ---------------------------------------------------

    @classmethod
    def _scan_docs(cls, root: str, fmt: str) -> list[dict[str, Any]]:
        """Read every queue document under ``root``: the flat default
        namespace plus one subdirectory per tenant."""
        docs = []
        for name in sorted(os.listdir(root)):
            path = os.path.join(root, name)
            if os.path.isdir(path):
                for sub in sorted(os.listdir(path)):
                    if sub.endswith(".json"):
                        doc = cls._read_doc(os.path.join(path, sub))
                        if doc is not None and doc.get("format") == fmt:
                            docs.append(doc)
            elif name.endswith(".json"):
                doc = cls._read_doc(path)
                if doc is not None and doc.get("format") == fmt:
                    docs.append(doc)
        return docs

    def _load(self) -> None:
        for doc in self._scan_docs(self._subs_dir, SUBMISSION_FORMAT):
            self._submissions[doc["id"]] = doc
        for doc in self._scan_docs(self._jobs_dir, JOB_RECORD_FORMAT):
            self._records[doc["id"]] = doc

    @staticmethod
    def _read_doc(path: str) -> dict[str, Any] | None:
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            # A torn write can only be the .tmp file -- renamed files
            # are whole -- but tolerate stray garbage rather than
            # bricking the queue.
            return None

    def _doc_path(self, root: str, doc: dict[str, Any]) -> str:
        tenant = doc.get("tenant")
        if tenant:
            root = os.path.join(root, tenant)
        return os.path.join(root, f"{doc['id']}.json")

    def _persist_record(self, record: dict[str, Any]) -> None:
        path = self._doc_path(self._jobs_dir, record)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _atomic_write(path, record)

    def _persist_submission(self, doc: dict[str, Any]) -> None:
        path = self._doc_path(self._subs_dir, doc)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _atomic_write(path, doc)

    # -- submission ----------------------------------------------------

    def _next_seq(self) -> int:
        seqs = [doc.get("seq", 0) for doc in self._submissions.values()]
        return max(seqs + [self._seq_floor]) + 1

    def submit(
        self,
        manifest_doc: Any,
        priority: int = 0,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """Expand a manifest into queued jobs; returns the submission.

        The whole manifest is validated (:class:`ManifestError`
        propagates) and every job's cache key computed *before*
        anything is enqueued, so a malformed submission leaves the
        queue untouched.  ``tenant`` prefixes the submission id and
        namespaces the on-disk documents (see module doc).
        """
        jobs = parse_manifest(manifest_doc)  # raises ManifestError
        digest = manifest_digest(manifest_doc)
        keys = [job_cache_key(job) for job in jobs]
        with self.changed:
            seq = self._next_seq()
            sub_id = (
                f"{tenant}-s{seq:06d}" if tenant else f"s{seq:06d}"
            )
            job_ids = [
                f"{sub_id}-{index:05d}" for index in range(len(jobs))
            ]
            submission = {
                "format": SUBMISSION_FORMAT,
                "version": QUEUE_SCHEMA_VERSION,
                "id": sub_id,
                "seq": seq,
                "tenant": tenant,
                "manifest_digest": digest,
                "total_jobs": len(jobs),
                "priority": priority,
                "submitted_at": time.time(),
                "job_ids": job_ids,
            }
            self._persist_submission(submission)
            self._submissions[sub_id] = submission
            for index, (job, key, job_id) in enumerate(
                zip(jobs, keys, job_ids)
            ):
                record = {
                    "format": JOB_RECORD_FORMAT,
                    "version": QUEUE_SCHEMA_VERSION,
                    "id": job_id,
                    "submission": sub_id,
                    "index": index,
                    "tenant": tenant,
                    "priority": priority,
                    "seq": seq,
                    "status": "queued",
                    "cache_key": key,
                    "job": job_to_doc(job),
                    "lease": None,
                    "requeues": 0,
                    "enqueued_at": submission["submitted_at"],
                    "first_leased_at": None,
                    "completed_seq": None,
                    "record": None,
                }
                self._persist_record(record)
                self._records[job_id] = record
            self._notify_all()
            return submission

    # -- scheduling ----------------------------------------------------

    def lease(
        self,
        worker: str,
        lease_seconds: float = 300.0,
        running_caps: dict[str, int] | None = None,
    ) -> dict[str, Any] | None:
        """Claim the next runnable job for ``worker``; ``None`` if idle.

        Highest ``priority`` first; among equal priorities the tenant
        with the fewest leases granted so far goes first (fair-share
        interleaving), then submission order, then manifest index.  A
        job whose cache key is already running on another worker is
        skipped (work dedup): it becomes runnable again once the twin
        finishes and will then hit the shared program cache.

        ``running_caps`` maps tenant names to their ``max_running_jobs``
        quota: a tenant at its cap is skipped this round (its jobs stay
        queued), so in-flight concurrency is enforced at the moment a
        worker would start the job.
        """
        with self.changed:
            running_keys = set()
            running_by_tenant: dict[str | None, int] = {}
            for record in self._records.values():
                if record["status"] == "running":
                    running_keys.add(record["cache_key"])
                    tenant = record.get("tenant")
                    running_by_tenant[tenant] = (
                        running_by_tenant.get(tenant, 0) + 1
                    )
            candidates = [
                record
                for record in self._records.values()
                if record["status"] == "queued"
                and record["cache_key"] not in running_keys
                and not (
                    running_caps is not None
                    and record.get("tenant") in running_caps
                    and running_by_tenant.get(record.get("tenant"), 0)
                    >= running_caps[record.get("tenant")]
                )
            ]
            if not candidates:
                return None
            grants = self._lease_grants
            record = min(
                candidates,
                key=lambda r: (
                    -r["priority"],
                    grants.get(r.get("tenant"), 0),
                    r["seq"],
                    r["index"],
                ),
            )
            tenant = record.get("tenant")
            grants[tenant] = grants.get(tenant, 0) + 1
            record["status"] = "running"
            record["lease"] = {
                "worker": worker,
                "expires_at": time.time() + lease_seconds,
            }
            if record.get("first_leased_at") is None:
                record["first_leased_at"] = time.time()
            self._persist_record(record)
            self._notify_all()
            return dict(record)

    def compile_job(self, record: dict[str, Any]) -> CompileJob:
        """Rebuild the :class:`CompileJob` a leased record describes."""
        return job_from_doc(record["job"])

    def complete(self, job_id: str, result_record: dict[str, Any]) -> None:
        """Finish a leased job with its schema-v2 result record.

        ``result_record`` is a :func:`repro.engine.shard.job_record`
        dict; its ``status`` (``"ok"``/``"error"``) decides the queue
        state.  Completing an already-completed job is a no-op (a
        requeued twin may have finished first after a lease expiry);
        the first completion wins.
        """
        with self.changed:
            record = self._records.get(job_id)
            if record is None:
                raise QueueError(f"unknown job {job_id!r}")
            if record["status"] in ("done", "error"):
                return
            record["status"] = (
                "done" if result_record.get("status") == "ok" else "error"
            )
            record["lease"] = None
            record["completed_seq"] = self._next_completed_seq()
            record["completed_at"] = time.time()
            record["record"] = result_record
            self._persist_record(record)
            self._notify_all()

    def _next_completed_seq(self) -> int:
        seqs = [
            record["completed_seq"]
            for record in self._records.values()
            if record.get("completed_seq") is not None
        ]
        return (max(seqs) if seqs else 0) + 1

    def renew(self, job_id: str, lease_seconds: float = 300.0) -> bool:
        """Extend a running job's lease (the worker heartbeat).

        The daemon renews the lease of every job its worker threads
        are actively executing, so a healthy compile can outlive the
        lease duration arbitrarily; only a worker that stops
        heartbeating -- dead thread, dead process -- lets the lease
        expire.  Returns False when the job is not currently leased.
        """
        with self.changed:
            record = self._records.get(job_id)
            if (
                record is None
                or record["status"] != "running"
                or record["lease"] is None
            ):
                return False
            record["lease"]["expires_at"] = time.time() + lease_seconds
            self._persist_record(record)
            return True

    def release(self, job_id: str) -> None:
        """Return a leased job to the queue unfinished (worker shutdown)."""
        with self.changed:
            record = self._records.get(job_id)
            if record is None or record["status"] != "running":
                return
            record["status"] = "queued"
            record["lease"] = None
            self._persist_record(record)
            self._notify_all()

    def _fail_requeue_bound(self, record: dict[str, Any]) -> None:
        """Record a job that exhausted its crash-requeue budget."""
        job = job_from_doc(record["job"])
        record["status"] = "error"
        record["lease"] = None
        record["completed_seq"] = self._next_completed_seq()
        record["completed_at"] = time.time()
        record["record"] = {
            "index": record["index"],
            "status": "error",
            **job.identity(),
            "cache_key": record["cache_key"],
            "cache_hit": False,
            "compile_time_s": 0.0,
            "error": {
                "type": "WorkerLostError",
                "message": (
                    f"worker lease expired {record['requeues']} times; "
                    "giving up (the job may be crashing its worker)"
                ),
            },
        }
        self._persist_record(record)

    def requeue_expired(self, now: float | None = None) -> list[str]:
        """Return expired-lease jobs to the queue; list of affected ids.

        Jobs past ``max_requeues`` are completed as errors instead of
        cycling forever.
        """
        now = time.time() if now is None else now
        touched = []
        with self.changed:
            for record in self._records.values():
                if record["status"] != "running":
                    continue
                lease = record.get("lease")
                if lease is not None and lease["expires_at"] > now:
                    continue
                record["requeues"] += 1
                touched.append(record["id"])
                if record["requeues"] > self.max_requeues:
                    self._fail_requeue_bound(record)
                    continue
                record["status"] = "queued"
                record["lease"] = None
                self._persist_record(record)
            if touched:
                self._notify_all()
        return touched

    def recover(self) -> list[str]:
        """Startup pass: requeue every job a dead daemon left running.

        The daemon that owned this queue is gone, so *any* lease --
        expired or not -- is orphaned.
        """
        return self.requeue_expired(now=float("inf"))

    # -- inspection ----------------------------------------------------

    def get(self, job_id: str) -> dict[str, Any] | None:
        """A copy of one job record."""
        with self._lock:
            record = self._records.get(job_id)
            return None if record is None else dict(record)

    def submission(self, sub_id: str) -> dict[str, Any] | None:
        """A copy of one submission document."""
        with self._lock:
            doc = self._submissions.get(sub_id)
            return None if doc is None else dict(doc)

    def submission_ids(self) -> list[str]:
        """All submission ids, oldest first."""
        with self._lock:
            return sorted(
                self._submissions,
                key=lambda sid: self._submissions[sid]["seq"],
            )

    def records_for(self, sub_id: str) -> list[dict[str, Any]]:
        """Copies of a submission's job records, by manifest index."""
        with self._lock:
            records = [
                dict(record)
                for record in self._records.values()
                if record["submission"] == sub_id
            ]
        records.sort(key=lambda record: record["index"])
        return records

    def completed_records(self, sub_id: str) -> list[dict[str, Any]]:
        """A submission's finished records, in completion order."""
        with self._lock:
            records = [
                dict(record)
                for record in self._records.values()
                if record["submission"] == sub_id
                and record["status"] in ("done", "error")
            ]
        records.sort(key=lambda record: record["completed_seq"])
        return records

    def completed_count(self, sub_id: str) -> int:
        """How many of a submission's jobs have finished.

        Cheap (no record copies, no sort) -- meant for tight wait
        predicates such as the result-stream idle poll.
        """
        with self._lock:
            return sum(
                1
                for record in self._records.values()
                if record["submission"] == sub_id
                and record["status"] in ("done", "error")
            )

    def counts(
        self,
        sub_id: str | None = None,
        tenant: str | None | Any = _UNFILTERED,
    ) -> dict[str, int]:
        """Job totals per state (optionally for one submission and/or
        one tenant namespace — pass ``tenant=None`` for the default
        namespace; omit the argument for all tenants)."""
        totals = dict.fromkeys(JOB_STATES, 0)
        with self._lock:
            for record in self._records.values():
                if sub_id is not None and record["submission"] != sub_id:
                    continue
                if (tenant is not _UNFILTERED
                        and record.get("tenant") != tenant):
                    continue
                totals[record["status"]] += 1
        return totals

    def tenants_seen(self) -> set[str]:
        """Tenant names present on any record (live quota gauges)."""
        with self._lock:
            return {
                record["tenant"]
                for record in self._records.values()
                if record.get("tenant")
            }

    def unfinished(self, sub_id: str | None = None) -> int:
        """Jobs not yet done or errored."""
        totals = self.counts(sub_id)
        return totals["queued"] + totals["running"]

    def oldest_queued_age(self, now: float | None = None) -> float:
        """Age in seconds of the oldest still-queued job (0.0 if none).

        The saturation gauge: a growing value means admissions outpace
        the worker pool.
        """
        now = time.time() if now is None else now
        with self._lock:
            stamps = [
                record.get("enqueued_at")
                for record in self._records.values()
                if record["status"] == "queued"
                and record.get("enqueued_at") is not None
            ]
        return max(0.0, now - min(stamps)) if stamps else 0.0

    # -- garbage collection --------------------------------------------

    def gc_completed(
        self, ttl_seconds: float, now: float | None = None
    ) -> list[str]:
        """Drop submissions whose work finished over ``ttl_seconds`` ago.

        Collection is **submission-granular**: a submission is removed
        only once every one of its jobs is ``done``/``error`` and its
        newest completion is older than the TTL.  Pruning individual
        records would leave a submission whose result stream can never
        cover all its indices, so a submission with *any* live
        (queued/running) job -- and therefore any leased job -- is
        never touched.  Returns the removed submission ids.
        """
        now = time.time() if now is None else now
        removed: list[str] = []
        with self.changed:
            by_submission: dict[str, list[dict[str, Any]]] = {}
            for record in self._records.values():
                by_submission.setdefault(
                    record["submission"], []
                ).append(record)
            for sub_id, submission in list(self._submissions.items()):
                records = by_submission.get(sub_id, [])
                if len(records) < submission["total_jobs"]:
                    continue  # missing records never imply "finished"
                if any(
                    record["status"] not in ("done", "error")
                    for record in records
                ):
                    continue
                newest = max(
                    record.get("completed_at")
                    or submission.get("submitted_at", now)
                    for record in records
                )
                if newest > now - ttl_seconds:
                    continue
                for record in records:
                    self._remove_file(
                        self._doc_path(self._jobs_dir, record)
                    )
                    del self._records[record["id"]]
                self._remove_file(
                    self._doc_path(self._subs_dir, submission)
                )
                self._seq_floor = max(
                    self._seq_floor, submission.get("seq", 0)
                )
                del self._submissions[sub_id]
                removed.append(sub_id)
            if removed:
                self._notify_all()
        return removed

    @staticmethod
    def _remove_file(path: str) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass

    def wait(
        self,
        predicate: Callable[[], bool],
        timeout: float | None = None,
    ) -> bool:
        """Block until ``predicate()`` holds or ``timeout`` elapses."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self.changed:
            while not predicate():
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self.changed.wait(remaining)
            return True


__all__ = [
    "DEFAULT_MAX_REQUEUES",
    "JOB_RECORD_FORMAT",
    "JOB_STATES",
    "JobQueue",
    "ManifestError",
    "QUEUE_SCHEMA_VERSION",
    "QueueError",
    "SUBMISSION_FORMAT",
    "queue_wait_s",
]
