"""Figure reproductions (Fig. 6 ablation and Fig. 7 multi-AOD study).

Figures are produced as *data series* (dicts of lists) plus plain-text
renderings, so they regenerate without a plotting stack; the series are
exactly what the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.enola import EnolaConfig
from ..benchsuite.suite import SUITE, benchmarks_in_family
from ..core.config import PowerMoveConfig
from ..engine.engine import CompilationEngine
from ..engine.jobs import CompileJob
from ..fidelity.model import COMPONENT_NAMES
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..utils.text import format_table
from .experiments import SCENARIOS, run_benchmark

#: Fig. 6 panels: family -> suite sizes plotted (paper x-axes).
FIGURE6_FAMILIES: dict[str, str] = {
    "QAOA-regular3": "a",
    "QSIM-rand-0.3": "b",
    "QFT": "c",
    "VQE": "d",
    "BV": "e",
}

#: Fig. 7 benchmarks (the paper's five representatives).
FIGURE7_KEYS: tuple[str, ...] = (
    "QAOA-regular3-100",
    "QSIM-rand-0.3-20",
    "QFT-18",
    "VQE-50",
    "BV-70",
)


@dataclass
class Figure6Panel:
    """One Fig. 6 panel: fidelity components vs qubit count.

    Attributes:
        family: Circuit family plotted.
        sizes: Qubit counts (x-axis).
        series: scenario -> component -> list of fidelity values aligned
            with ``sizes``; the special component ``total`` carries the
            overall Eq. (1) fidelity.
    """

    family: str
    sizes: list[int] = field(default_factory=list)
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering, one sub-table per scenario."""
        parts = [f"Figure 6 ({self.family}): fidelity components vs #qubits"]
        headers = ["#qubits", *COMPONENT_NAMES, "total"]
        for scenario in self.series:
            rows = []
            for idx, n in enumerate(self.sizes):
                row = [n]
                for name in (*COMPONENT_NAMES, "total"):
                    row.append(self.series[scenario][name][idx])
                rows.append(row)
            parts.append(format_table(headers, rows, title=f"[{scenario}]"))
        return "\n\n".join(parts)


def figure6_panel(
    family: str,
    seed: int = 0,
    enola_config: EnolaConfig | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
    sizes: list[int] | None = None,
    validate: bool = True,
) -> Figure6Panel:
    """Reproduce one Fig. 6 panel for ``family``.

    Args:
        family: One of :data:`FIGURE6_FAMILIES` (or any suite family).
        seed: Benchmark and compiler seed.
        enola_config: Lighter Enola knobs for quick runs.
        params: Hardware constants.
        sizes: Restrict to these qubit counts (default: all suite sizes).
        validate: Validate every compiled program.
    """
    specs = benchmarks_in_family(family)
    if sizes is not None:
        specs = [s for s in specs if s.num_qubits in set(sizes)]
        if not specs:
            raise ValueError(f"no {family} benchmarks with sizes {sizes}")
    panel = Figure6Panel(family=family)
    panel.series = {
        scenario: {name: [] for name in (*COMPONENT_NAMES, "total")}
        for scenario in SCENARIOS
    }
    for spec in specs:
        result = run_benchmark(
            spec,
            seed=seed,
            enola_config=enola_config,
            params=params,
            validate=validate,
        )
        panel.sizes.append(spec.num_qubits)
        for scenario in SCENARIOS:
            report = result[scenario].fidelity
            for name in COMPONENT_NAMES:
                panel.series[scenario][name].append(report.component(name))
            panel.series[scenario]["total"].append(report.total)
    return panel


@dataclass
class Figure7Series:
    """Fig. 7: execution time and fidelity vs AOD count.

    Attributes:
        aod_counts: x-axis (1..4 in the paper).
        texe_us: benchmark key -> T_exe (us) per AOD count.
        fidelity: benchmark key -> total fidelity per AOD count.
    """

    aod_counts: list[int] = field(default_factory=list)
    texe_us: dict[str, list[float]] = field(default_factory=dict)
    fidelity: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering of both sub-plots."""
        headers = ["benchmark", *[f"{k} AOD" for k in self.aod_counts]]
        texe_rows = [
            [key, *values] for key, values in self.texe_us.items()
        ]
        fid_rows = [
            [key, *values] for key, values in self.fidelity.items()
        ]
        return "\n\n".join(
            [
                format_table(
                    headers, texe_rows, title="Figure 7: T_exe (us) vs #AOD"
                ),
                format_table(
                    headers, fid_rows, title="Figure 7: fidelity vs #AOD"
                ),
            ]
        )


def figure7_series(
    keys: tuple[str, ...] = FIGURE7_KEYS,
    aod_counts: tuple[int, ...] = (1, 2, 3, 4),
    seed: int = 0,
    params: HardwareParams = DEFAULT_PARAMS,
    validate: bool = True,
    engine: CompilationEngine | None = None,
    backend: str = "powermove",
    arch: str | None = None,
) -> Figure7Series:
    """Reproduce Fig. 7: PowerMove with-storage under 1..4 AOD arrays.

    The whole (benchmark x AOD count) grid is submitted as one engine
    batch, so a multi-worker ``engine`` compiles every point in parallel.
    Pass ``backend`` to sweep a different registry backend (an ablation
    variant, ``"enola"``, ...) over the same AOD grid; backends whose
    config has no AOD knob are rejected -- the sweep would recompile
    one identical program per grid point.  ``arch`` names an
    architecture-catalog entry every point compiles onto.
    """
    if backend != "powermove":
        from dataclasses import fields as dataclass_fields

        from ..pipeline.registry import get_backend

        config_cls = get_backend(backend).config_cls
        if "num_aods" not in {
            f.name for f in dataclass_fields(config_cls)
        }:
            raise ValueError(
                f"backend {backend!r} has no num_aods knob; "
                "a Fig. 7 AOD sweep over it is meaningless"
            )
    series = Figure7Series(aod_counts=list(aod_counts))
    circuits = {key: SUITE[key].build(seed) for key in keys}
    jobs = [
        CompileJob(
            scenario=(
                "pm_with_storage" if backend == "powermove" else None
            ),
            circuit=circuits[key],
            num_aods=num_aods,
            seed=seed,
            powermove_config=PowerMoveConfig(num_aods=num_aods),
            params=params,
            validate=validate,
            backend=None if backend == "powermove" else backend,
            arch=arch,
        )
        for key in keys
        for num_aods in aod_counts
    ]
    effective_engine = engine or CompilationEngine()
    job_results = effective_engine.run(jobs)
    for result in job_results:
        if not result.ok:
            raise ValueError(
                "cannot tabulate a failed compilation: "
                + result.error.describe()
            )
    width = len(aod_counts)
    for position, key in enumerate(keys):
        chunk = job_results[position * width : (position + 1) * width]
        series.texe_us[key] = [
            r.fidelity.execution_time_us for r in chunk
        ]
        series.fidelity[key] = [r.fidelity.total for r in chunk]
    return series


__all__ = [
    "FIGURE6_FAMILIES",
    "FIGURE7_KEYS",
    "Figure6Panel",
    "Figure7Series",
    "figure6_panel",
    "figure7_series",
]
