"""Experiment runner: one benchmark through all three scenarios.

The paper's evaluation compares three compilations of every benchmark:

* **Enola** -- the baseline, no storage zone;
* **PowerMove non-storage** -- continuous router only, no storage zone;
* **PowerMove with-storage** -- all three components on the zoned machine.

:func:`run_scenarios` produces all three programs, validates them, and
evaluates the Eq. (1) fidelity model, yielding one :class:`BenchmarkResult`
-- the unit from which Table 3, Fig. 6 and Fig. 7 are assembled.

All compilation is routed through the
:class:`~repro.engine.engine.CompilationEngine`; pass ``engine=`` to
share a cache or a process pool across calls, and use
:func:`run_scenarios_batch` to fan a whole suite out in one batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..baselines.enola import EnolaConfig
from ..benchsuite.suite import BenchmarkSpec
from ..circuits.circuit import Circuit
from ..core.config import PowerMoveConfig
from ..engine.engine import CompilationEngine, JobResult
from ..engine.jobs import SCENARIOS, CompileJob
from ..fidelity.model import FidelityReport
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.program import NAProgram


@dataclass
class ScenarioResult:
    """One compiler's outcome on one benchmark.

    Attributes:
        scenario: Scenario key (see :data:`SCENARIOS`).
        compiler_name: Human-readable compiler label.
        fidelity: Eq. (1) evaluation of the compiled program.
        compile_time: Wall-clock compilation seconds (``T_comp``).
        program: The compiled program itself.
        cache_hit: Whether the engine served the program from its cache.
    """

    scenario: str
    compiler_name: str
    fidelity: FidelityReport
    compile_time: float
    program: NAProgram
    cache_hit: bool = False

    @property
    def execution_time_us(self) -> float:
        """``T_exe`` in microseconds."""
        return self.fidelity.execution_time_us

    @classmethod
    def from_job_result(cls, job_result: JobResult) -> "ScenarioResult":
        """Adapt one engine result into a scenario row.

        Error results (fail-soft ``on_error="collect"`` engines) cannot
        be tabulated; they raise with the failure's index and key so a
        misconfigured sweep fails loudly instead of averaging nothing.
        """
        if not job_result.ok:
            raise ValueError(
                "cannot tabulate a failed compilation: "
                + job_result.error.describe()
            )
        return cls(
            scenario=job_result.scenario,
            compiler_name=job_result.program.compiler_name,
            fidelity=job_result.fidelity,
            compile_time=job_result.compile_time,
            program=job_result.program,
            cache_hit=job_result.cache_hit,
        )


@dataclass
class BenchmarkResult:
    """All scenarios of one benchmark, plus the paper's derived ratios.

    Attributes:
        key: Benchmark row name.
        num_qubits: Circuit width.
        scenarios: Scenario key -> :class:`ScenarioResult`.
    """

    key: str
    num_qubits: int
    scenarios: dict[str, ScenarioResult] = field(default_factory=dict)

    def __getitem__(self, scenario: str) -> ScenarioResult:
        return self.scenarios[scenario]

    @property
    def fidelity_improvement(self) -> float:
        """With-storage fidelity over Enola's (Table 3 "Fidelity Improv.")."""
        base = self["enola"].fidelity.total
        ours = self["pm_with_storage"].fidelity.total
        return float("inf") if base == 0.0 else ours / base

    @property
    def texe_improvement(self) -> float:
        """Enola T_exe over non-storage T_exe (Table 3 "T_exe Improv.")."""
        ours = self["pm_non_storage"].fidelity.execution_time
        base = self["enola"].fidelity.execution_time
        return float("inf") if ours == 0.0 else base / ours

    @property
    def tcomp_improvement(self) -> float:
        """Enola T_comp over the mean PowerMove T_comp (Table 3 column).

        The paper reports "the average" of the two PowerMove scenarios'
        compilation times.
        """
        ours = (
            self["pm_non_storage"].compile_time
            + self["pm_with_storage"].compile_time
        ) / 2.0
        base = self["enola"].compile_time
        return float("inf") if ours == 0.0 else base / ours


def _scenario_jobs(
    circuit: Circuit,
    scenarios: Sequence[str],
    num_aods: int,
    seed: int,
    enola_config: EnolaConfig | None,
    powermove_config: PowerMoveConfig | None,
    params: HardwareParams,
    validate: bool,
    arch: str | None = None,
) -> list[CompileJob]:
    """One job per key; legacy scenario keys or registry backend names."""
    return [
        CompileJob(
            scenario=key if key in SCENARIOS else None,
            circuit=circuit,
            num_aods=num_aods,
            seed=seed,
            enola_config=enola_config,
            powermove_config=powermove_config,
            params=params,
            validate=validate,
            backend=None if key in SCENARIOS else key,
            arch=arch,
        )
        for key in scenarios
    ]


def _assemble(
    circuit: Circuit, job_results: Sequence[JobResult]
) -> BenchmarkResult:
    result = BenchmarkResult(key=circuit.name, num_qubits=circuit.num_qubits)
    for job_result in job_results:
        result.scenarios[job_result.scenario] = ScenarioResult.from_job_result(
            job_result
        )
    return result


def run_scenarios(
    circuit: Circuit,
    num_aods: int = 1,
    seed: int = 0,
    enola_config: EnolaConfig | None = None,
    powermove_config: PowerMoveConfig | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
    validate: bool = True,
    scenarios: tuple[str, ...] = SCENARIOS,
    engine: CompilationEngine | None = None,
    arch: str | None = None,
) -> BenchmarkResult:
    """Compile ``circuit`` under every requested scenario and analyse it.

    Args:
        circuit: The benchmark circuit.
        num_aods: AOD arrays for all scenarios.
        seed: Seed shared by all compilers.
        enola_config: Override the Enola baseline's knobs.
        powermove_config: Override PowerMove's knobs (``use_storage`` and
            ``num_aods`` are still forced per scenario).
        params: Hardware constants.
        validate: Run the structural validator on every program (on by
            default; switch off only in timing-sensitive loops).
        scenarios: Keys to run -- any mix of legacy :data:`SCENARIOS`
            entries and :mod:`repro.pipeline` backend registry names
            (``"atomique"``, ``"powermove-noreorder"``, ...).
        engine: Compilation engine to route through (a fresh serial,
            cache-less engine when omitted).
        arch: Optional architecture-catalog entry name every scenario
            compiles onto (see ``repro architectures``).

    Returns:
        The populated :class:`BenchmarkResult`.
    """
    jobs = _scenario_jobs(
        circuit,
        scenarios,
        num_aods,
        seed,
        enola_config,
        powermove_config,
        params,
        validate,
        arch,
    )
    effective_engine = engine or CompilationEngine()
    return _assemble(circuit, effective_engine.run(jobs))


def run_scenarios_batch(
    circuits: Sequence[Circuit],
    num_aods: int = 1,
    seeds: int | Sequence[int] = 0,
    enola_config: EnolaConfig | None = None,
    powermove_config: PowerMoveConfig | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
    validate: bool = True,
    scenarios: tuple[str, ...] = SCENARIOS,
    engine: CompilationEngine | None = None,
    arch: str | None = None,
) -> list[BenchmarkResult]:
    """Run many benchmarks' scenarios as one engine batch.

    The (circuit, scenario) product is submitted in a single
    :meth:`CompilationEngine.run` call, so a multi-worker engine overlaps
    every compilation of the whole suite rather than one benchmark's
    three scenarios at a time.

    Args:
        circuits: The workloads, one :class:`BenchmarkResult` each.
        seeds: One shared seed, or a per-circuit seed sequence.

    Other arguments match :func:`run_scenarios`.
    """
    if isinstance(seeds, int):
        seed_list = [seeds] * len(circuits)
    else:
        seed_list = list(seeds)
        if len(seed_list) != len(circuits):
            raise ValueError("need one seed per circuit")
    jobs: list[CompileJob] = []
    for circuit, seed in zip(circuits, seed_list):
        jobs.extend(
            _scenario_jobs(
                circuit,
                scenarios,
                num_aods,
                seed,
                enola_config,
                powermove_config,
                params,
                validate,
                arch,
            )
        )
    effective_engine = engine or CompilationEngine()
    job_results = effective_engine.run(jobs)
    results: list[BenchmarkResult] = []
    width = len(scenarios)
    for position, circuit in enumerate(circuits):
        chunk = job_results[position * width : (position + 1) * width]
        results.append(_assemble(circuit, chunk))
    return results


def run_benchmark(
    spec: BenchmarkSpec,
    num_aods: int = 1,
    seed: int = 0,
    **kwargs,
) -> BenchmarkResult:
    """Build a suite benchmark and run all scenarios on it."""
    circuit = spec.build(seed)
    return run_scenarios(circuit, num_aods=num_aods, seed=seed, **kwargs)


__all__ = [
    "BenchmarkResult",
    "SCENARIOS",
    "ScenarioResult",
    "run_benchmark",
    "run_scenarios",
    "run_scenarios_batch",
]
