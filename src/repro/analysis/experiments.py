"""Experiment runner: one benchmark through all three scenarios.

The paper's evaluation compares three compilations of every benchmark:

* **Enola** -- the baseline, no storage zone;
* **PowerMove non-storage** -- continuous router only, no storage zone;
* **PowerMove with-storage** -- all three components on the zoned machine.

:func:`run_scenarios` produces all three programs, validates them, and
evaluates the Eq. (1) fidelity model, yielding one :class:`BenchmarkResult`
-- the unit from which Table 3, Fig. 6 and Fig. 7 are assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.enola import EnolaCompiler, EnolaConfig
from ..benchsuite.suite import BenchmarkSpec
from ..circuits.circuit import Circuit
from ..core.compiler import PowerMoveCompiler
from ..core.config import PowerMoveConfig
from ..fidelity.model import FidelityModel, FidelityReport
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.program import NAProgram
from ..schedule.validator import validate_program

#: Canonical scenario keys, in report order.
SCENARIOS = ("enola", "pm_non_storage", "pm_with_storage")


@dataclass
class ScenarioResult:
    """One compiler's outcome on one benchmark.

    Attributes:
        scenario: Scenario key (see :data:`SCENARIOS`).
        compiler_name: Human-readable compiler label.
        fidelity: Eq. (1) evaluation of the compiled program.
        compile_time: Wall-clock compilation seconds (``T_comp``).
        program: The compiled program itself.
    """

    scenario: str
    compiler_name: str
    fidelity: FidelityReport
    compile_time: float
    program: NAProgram

    @property
    def execution_time_us(self) -> float:
        """``T_exe`` in microseconds."""
        return self.fidelity.execution_time_us


@dataclass
class BenchmarkResult:
    """All scenarios of one benchmark, plus the paper's derived ratios.

    Attributes:
        key: Benchmark row name.
        num_qubits: Circuit width.
        scenarios: Scenario key -> :class:`ScenarioResult`.
    """

    key: str
    num_qubits: int
    scenarios: dict[str, ScenarioResult] = field(default_factory=dict)

    def __getitem__(self, scenario: str) -> ScenarioResult:
        return self.scenarios[scenario]

    @property
    def fidelity_improvement(self) -> float:
        """With-storage fidelity over Enola's (Table 3 "Fidelity Improv.")."""
        base = self["enola"].fidelity.total
        ours = self["pm_with_storage"].fidelity.total
        return float("inf") if base == 0.0 else ours / base

    @property
    def texe_improvement(self) -> float:
        """Enola T_exe over non-storage T_exe (Table 3 "T_exe Improv.")."""
        ours = self["pm_non_storage"].fidelity.execution_time
        base = self["enola"].fidelity.execution_time
        return float("inf") if ours == 0.0 else base / ours

    @property
    def tcomp_improvement(self) -> float:
        """Enola T_comp over the mean PowerMove T_comp (Table 3 column).

        The paper reports "the average" of the two PowerMove scenarios'
        compilation times.
        """
        ours = (
            self["pm_non_storage"].compile_time
            + self["pm_with_storage"].compile_time
        ) / 2.0
        base = self["enola"].compile_time
        return float("inf") if ours == 0.0 else base / ours


def run_scenarios(
    circuit: Circuit,
    num_aods: int = 1,
    seed: int = 0,
    enola_config: EnolaConfig | None = None,
    powermove_config: PowerMoveConfig | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
    validate: bool = True,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> BenchmarkResult:
    """Compile ``circuit`` under every requested scenario and analyse it.

    Args:
        circuit: The benchmark circuit.
        num_aods: AOD arrays for all scenarios.
        seed: Seed shared by all compilers.
        enola_config: Override the Enola baseline's knobs.
        powermove_config: Override PowerMove's knobs (``use_storage`` and
            ``num_aods`` are still forced per scenario).
        params: Hardware constants.
        validate: Run the structural validator on every program (on by
            default; switch off only in timing-sensitive loops).
        scenarios: Subset of :data:`SCENARIOS` to run.

    Returns:
        The populated :class:`BenchmarkResult`.
    """
    result = BenchmarkResult(key=circuit.name, num_qubits=circuit.num_qubits)
    model = FidelityModel(params)

    for scenario in scenarios:
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}")
        if scenario == "enola":
            e_cfg = enola_config or EnolaConfig(seed=seed, num_aods=num_aods)
            compiler = EnolaCompiler(e_cfg, params)
            compilation = compiler.compile(circuit)
        else:
            use_storage = scenario == "pm_with_storage"
            if powermove_config is not None:
                base = powermove_config
                pm_cfg = PowerMoveConfig(
                    use_storage=use_storage,
                    alpha=base.alpha,
                    num_aods=num_aods,
                    seed=seed,
                    reorder_stages=base.reorder_stages,
                    distance_aware_grouping=base.distance_aware_grouping,
                    intra_stage_ordering=base.intra_stage_ordering,
                    annealed_placement=base.annealed_placement,
                    stage_ordering=base.stage_ordering,
                )
            else:
                pm_cfg = PowerMoveConfig(
                    use_storage=use_storage, num_aods=num_aods, seed=seed
                )
            compiler = PowerMoveCompiler(pm_cfg, params)
            compilation = compiler.compile(circuit)
        if validate:
            validate_program(
                compilation.program, source_circuit=compilation.native_circuit
            )
        result.scenarios[scenario] = ScenarioResult(
            scenario=scenario,
            compiler_name=compilation.program.compiler_name,
            fidelity=model.evaluate(compilation.program),
            compile_time=compilation.compile_time,
            program=compilation.program,
        )
    return result


def run_benchmark(
    spec: BenchmarkSpec,
    num_aods: int = 1,
    seed: int = 0,
    **kwargs,
) -> BenchmarkResult:
    """Build a suite benchmark and run all scenarios on it."""
    circuit = spec.build(seed)
    return run_scenarios(circuit, num_aods=num_aods, seed=seed, **kwargs)


__all__ = [
    "BenchmarkResult",
    "SCENARIOS",
    "ScenarioResult",
    "run_benchmark",
    "run_scenarios",
]
