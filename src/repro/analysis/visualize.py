"""ASCII visualisation of layouts and compiled programs.

Renders the zoned floor plan as character art -- computation zone on top,
inter-zone gap, storage zone below, matching the paper's figures -- and
steps a compiled program instruction by instruction.  Useful for
debugging routed stages and for documentation.

Legend:
    ``.``    empty site
    ``a``..  single qubit (letters a-z then A-Z wrap by qubit id mod 52)
    ``#``    interacting pair (two qubits co-located)
    ``!``    over-occupied site (should never appear in valid programs)
"""

from __future__ import annotations

import string
from typing import Iterable

from ..hardware.geometry import Site, Zone, ZonedArchitecture
from ..hardware.layout import Layout
from ..schedule.instructions import MoveBatch, OneQubitLayer, RydbergStage
from ..schedule.program import NAProgram
from ..schedule.tracker import PositionTracker

_LETTERS = string.ascii_lowercase + string.ascii_uppercase


def _qubit_char(qubit: int) -> str:
    return _LETTERS[qubit % len(_LETTERS)]


def _render_zone(
    arch: ZonedArchitecture,
    zone: Zone,
    occupancy: dict[Site, set[int]],
) -> list[str]:
    cols, rows = (
        arch.compute_shape if zone is Zone.COMPUTE else arch.storage_shape
    )
    lines: list[str] = []
    row_range = (
        range(rows - 1, -1, -1) if zone is Zone.COMPUTE else range(rows)
    )
    for row in row_range:
        cells: list[str] = []
        for col in range(cols):
            site = arch.site(zone, col, row)
            tenants = occupancy.get(site, set())
            if not tenants:
                cells.append(".")
            elif len(tenants) == 1:
                cells.append(_qubit_char(next(iter(tenants))))
            elif len(tenants) == 2:
                cells.append("#")
            else:
                cells.append("!")
        lines.append(" ".join(cells))
    return lines


def render_occupancy(
    arch: ZonedArchitecture, occupancy: dict[Site, set[int]]
) -> str:
    """Render a site->tenants map as the two-zone floor plan."""
    parts = ["[compute]"]
    parts.extend(_render_zone(arch, Zone.COMPUTE, occupancy))
    if arch.has_storage:
        parts.append("~" * max(2 * arch.compute_shape[0] - 1, 9))
        parts.append("[storage]")
        parts.extend(_render_zone(arch, Zone.STORAGE, occupancy))
    return "\n".join(parts)


def render_layout(layout: Layout) -> str:
    """Render a :class:`Layout` as the two-zone floor plan."""
    occupancy: dict[Site, set[int]] = {}
    for qubit in layout.qubits:
        occupancy.setdefault(layout.site_of(qubit), set()).add(qubit)
    return render_occupancy(layout.architecture, occupancy)


def describe_instruction(instr) -> str:
    """One-line summary of an instruction."""
    if isinstance(instr, OneQubitLayer):
        return f"1Q layer: {instr.num_gates} gates, depth {instr.depth}"
    if isinstance(instr, MoveBatch):
        parts = []
        for cm in instr.coll_moves:
            moves = ", ".join(
                f"q{m.qubit}->{m.destination}" for m in cm.moves
            )
            parts.append(f"AOD{cm.aod_index}[{moves}]")
        return "move batch: " + "; ".join(parts)
    if isinstance(instr, RydbergStage):
        pairs = ", ".join(
            f"({g.qubits[0]},{g.qubits[1]})" for g in instr.gates
        )
        return f"rydberg stage: {instr.num_gates} gates {pairs}"
    return repr(instr)


def program_trace(
    program: NAProgram,
    show_layout_every_stage: bool = True,
    max_instructions: int | None = None,
) -> str:
    """Step through a program, rendering layouts at each Rydberg stage.

    Args:
        program: The compiled program.
        show_layout_every_stage: Render the floor plan at every Rydberg
            stage (else only the initial layout).
        max_instructions: Truncate after this many instructions.

    Returns:
        The multi-line trace text.
    """
    arch = program.architecture
    tracker = PositionTracker.from_layout(program.initial_layout)
    parts = [
        f"program: {program.compiler_name} on {program.source_name!r}",
        f"machine: {arch!r}",
        "",
        "initial layout:",
        render_occupancy(arch, tracker.occupancy()),
        "",
    ]
    for index, instr in enumerate(program.instructions):
        if max_instructions is not None and index >= max_instructions:
            parts.append(
                f"... ({len(program.instructions) - index} more instructions)"
            )
            break
        parts.append(f"[{index:3d}] {describe_instruction(instr)}")
        if isinstance(instr, MoveBatch):
            tracker.apply_moves(instr.all_moves)
        elif isinstance(instr, RydbergStage) and show_layout_every_stage:
            parts.append(render_occupancy(arch, tracker.occupancy()))
            parts.append("")
    return "\n".join(parts)


def render_moves(moves: Iterable) -> str:
    """Tabular rendering of 1Q moves (for router debugging)."""
    lines = ["qubit  from            to              dist(um)"]
    for move in moves:
        lines.append(
            f"q{move.qubit:<4d} {str(move.source):15s} "
            f"{str(move.destination):15s} {move.distance * 1e6:7.1f}"
        )
    return "\n".join(lines)


__all__ = [
    "describe_instruction",
    "program_trace",
    "render_layout",
    "render_moves",
    "render_occupancy",
]
