"""Workload characterisation: why each benchmark behaves as it does.

The paper's Sec. 7.3 explains its results through circuit structure: BV
and QSim have "numerous CZ blocks ... each with relatively few CZ gates"
(excitation-error dominated, storage rescues them), QAOA/VQE have dense
blocks with high stage utilisation (decoherence dominated, the router
matters most).  This module computes those structural features directly
from a circuit, before any compilation, so the behaviour of a new
workload can be predicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.blocks import partition_into_blocks
from ..circuits.circuit import Circuit
from ..circuits.transpile import transpile_to_native
from ..core.stage_scheduler import partition_stages
from ..utils.text import format_table


@dataclass(frozen=True)
class WorkloadProfile:
    """Structural features of one circuit.

    Attributes:
        name: Circuit name.
        num_qubits: Circuit width.
        num_two_qubit_gates: CZ-class gate count after transpilation.
        num_one_qubit_gates: 1Q gate count after transpilation.
        num_blocks: Commuting CZ blocks.
        gates_per_block: Mean CZ gates per block.
        num_stages: Total Rydberg stages (DSATUR partition, unordered).
        gates_per_stage: Mean CZ gates per stage.
        stage_utilization: Mean fraction of qubits gated per stage.
        idle_exposure_per_stage: Mean idle qubits per Rydberg shot if no
            storage zone is used (the excitation-error driver).
        interaction_degree_max: Max distinct partners of any qubit.
        interaction_degree_mean: Mean distinct partners per used qubit.
    """

    name: str
    num_qubits: int
    num_two_qubit_gates: int
    num_one_qubit_gates: int
    num_blocks: int
    gates_per_block: float
    num_stages: int
    gates_per_stage: float
    stage_utilization: float
    idle_exposure_per_stage: float
    interaction_degree_max: int
    interaction_degree_mean: float

    @property
    def regime(self) -> str:
        """Coarse classification driving the storage-zone benefit.

        ``excitation-dominated`` -- many sparse stages leave most qubits
        idle in the beam (BV/QSim shape; storage rescues fidelity by
        orders of magnitude); ``decoherence-dominated`` -- dense stages
        keep qubits busy, time/movement dominates (QAOA/VQE shape);
        ``mixed`` in between.
        """
        if self.stage_utilization < 0.35:
            return "excitation-dominated"
        if self.stage_utilization > 0.7:
            return "decoherence-dominated"
        return "mixed"


def profile_circuit(circuit: Circuit) -> WorkloadProfile:
    """Compute the :class:`WorkloadProfile` of ``circuit``."""
    native = transpile_to_native(circuit)
    partition = partition_into_blocks(native)
    n = native.num_qubits

    num_stages = 0
    gated_fractions: list[float] = []
    idle_counts: list[int] = []
    for block in partition.blocks:
        for stage in partition_stages(block):
            num_stages += 1
            gated = len(stage.interacting_qubits())
            gated_fractions.append(gated / n)
            idle_counts.append(n - gated)

    partners: dict[int, set[int]] = {}
    for a, b in native.interaction_pairs():
        partners.setdefault(a, set()).add(b)
        partners.setdefault(b, set()).add(a)
    degrees = [len(p) for p in partners.values()]

    g2 = partition.num_two_qubit_gates
    return WorkloadProfile(
        name=circuit.name,
        num_qubits=n,
        num_two_qubit_gates=g2,
        num_one_qubit_gates=partition.num_one_qubit_gates,
        num_blocks=partition.num_blocks,
        gates_per_block=(
            g2 / partition.num_blocks if partition.num_blocks else 0.0
        ),
        num_stages=num_stages,
        gates_per_stage=(g2 / num_stages if num_stages else 0.0),
        stage_utilization=(
            sum(gated_fractions) / len(gated_fractions)
            if gated_fractions
            else 0.0
        ),
        idle_exposure_per_stage=(
            sum(idle_counts) / len(idle_counts) if idle_counts else 0.0
        ),
        interaction_degree_max=max(degrees, default=0),
        interaction_degree_mean=(
            sum(degrees) / len(degrees) if degrees else 0.0
        ),
    )


def render_profiles(profiles: list[WorkloadProfile]) -> str:
    """Text table of workload profiles (the Sec. 7.3 atlas)."""
    headers = [
        "Workload",
        "n",
        "2Q gates",
        "blocks",
        "gates/block",
        "stages",
        "utilization",
        "idle/stage",
        "regime",
    ]
    rows = [
        [
            p.name,
            p.num_qubits,
            p.num_two_qubit_gates,
            p.num_blocks,
            round(p.gates_per_block, 2),
            p.num_stages,
            round(p.stage_utilization, 3),
            round(p.idle_exposure_per_stage, 1),
            p.regime,
        ]
        for p in profiles
    ]
    return format_table(headers, rows, title="Workload atlas")


__all__ = ["WorkloadProfile", "profile_circuit", "render_profiles"]
