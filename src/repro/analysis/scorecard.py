"""Reproduction scorecard: programmatic paper-vs-measured shape checks.

EXPERIMENTS.md records the comparison narratively; this module makes it
executable.  For each Table 3 row it evaluates the *shape predicates*
that define a successful reproduction (per DESIGN.md):

* ``ordering``          -- Enola <= non-storage on fidelity, and
                           with-storage strictly beats Enola;
* ``storage_rescue``    -- with-storage excitation component is exactly 1;
* ``texe_direction``    -- non-storage executes faster than Enola;
* ``tcomp_direction``   -- PowerMove compiles faster than Enola;
* ``fidelity_magnitude``-- measured with-storage fidelity within a
                           configurable factor of the paper's value
                           (on a log scale, so 0-fidelity floors behave).

The scorecard renders as a pass/fail matrix and aggregates a score,
useful both in CI and as the quantitative companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..baselines.enola import EnolaConfig
from ..benchsuite.suite import SUITE
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..utils.text import format_table
from .experiments import BenchmarkResult, run_benchmark
from .tables import PAPER_TABLE3

#: Shape predicates evaluated per row, in render order.
CHECK_NAMES = (
    "ordering",
    "storage_rescue",
    "texe_direction",
    "tcomp_direction",
    "fidelity_magnitude",
)


@dataclass
class RowScore:
    """Shape-check outcomes of one benchmark row.

    Attributes:
        key: Benchmark row name.
        checks: check name -> pass/fail.
        measured_ws_fidelity: Our with-storage fidelity.
        paper_ws_fidelity: The paper's with-storage fidelity.
    """

    key: str
    checks: dict[str, bool] = field(default_factory=dict)
    measured_ws_fidelity: float = 0.0
    paper_ws_fidelity: float = 0.0

    @property
    def passed(self) -> int:
        """Number of passing checks."""
        return sum(self.checks.values())

    @property
    def total(self) -> int:
        """Number of checks evaluated."""
        return len(self.checks)


@dataclass
class Scorecard:
    """Aggregated reproduction scorecard.

    Attributes:
        rows: Per-benchmark scores, in run order.
    """

    rows: list[RowScore] = field(default_factory=list)

    @property
    def score(self) -> float:
        """Fraction of passing checks across all rows (0..1)."""
        total = sum(r.total for r in self.rows)
        return sum(r.passed for r in self.rows) / total if total else 0.0

    def failing(self) -> list[tuple[str, str]]:
        """(row, check) pairs that failed."""
        return [
            (row.key, name)
            for row in self.rows
            for name, ok in row.checks.items()
            if not ok
        ]

    def render(self) -> str:
        """Pass/fail matrix as a text table."""
        headers = ["Benchmark", *CHECK_NAMES, "ws fid (ours/paper)"]
        body = []
        for row in self.rows:
            cells = [row.key]
            cells.extend(
                "pass" if row.checks.get(name) else "FAIL"
                for name in CHECK_NAMES
            )
            cells.append(
                f"{row.measured_ws_fidelity:.3g} / "
                f"{row.paper_ws_fidelity:.3g}"
            )
            body.append(cells)
        table = format_table(
            headers, body, title="Reproduction scorecard"
        )
        return f"{table}\nscore: {self.score:.1%}"


def score_row(
    result: BenchmarkResult,
    magnitude_tolerance_decades: float = 1.0,
) -> RowScore:
    """Evaluate the shape predicates on one benchmark result.

    Args:
        result: The three-scenario run of one Table 3 benchmark.
        magnitude_tolerance_decades: Allowed |log10(ours/paper)| on the
            with-storage fidelity before ``fidelity_magnitude`` fails.
    """
    paper = PAPER_TABLE3.get(result.key)
    if paper is None:
        raise KeyError(f"no paper reference for {result.key!r}")
    enola = result["enola"]
    ns = result["pm_non_storage"]
    ws = result["pm_with_storage"]

    score = RowScore(
        key=result.key,
        measured_ws_fidelity=ws.fidelity.total,
        paper_ws_fidelity=paper[2],
    )
    score.checks["ordering"] = (
        enola.fidelity.total <= ns.fidelity.total
        and ws.fidelity.total > enola.fidelity.total
    )
    score.checks["storage_rescue"] = ws.fidelity.excitation == 1.0
    score.checks["texe_direction"] = (
        ns.fidelity.execution_time < enola.fidelity.execution_time
    )
    score.checks["tcomp_direction"] = result.tcomp_improvement > 1.0
    ours = max(ws.fidelity.total, 1e-300)
    theirs = max(paper[2], 1e-300)
    score.checks["fidelity_magnitude"] = (
        abs(math.log10(ours / theirs)) <= magnitude_tolerance_decades
    )
    return score


def run_scorecard(
    keys: tuple[str, ...] | None = None,
    seed: int = 0,
    enola_config: EnolaConfig | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
    magnitude_tolerance_decades: float = 1.0,
    validate: bool = False,
) -> Scorecard:
    """Run benchmarks and score every shape predicate.

    Args:
        keys: Table 3 rows to score (all 23 by default).
        seed: Experiment seed.
        enola_config: Lighter Enola knobs for quick runs.
        params: Hardware constants.
        magnitude_tolerance_decades: See :func:`score_row`.
        validate: Structurally validate every compiled program.
    """
    card = Scorecard()
    for key in keys or tuple(PAPER_TABLE3):
        result = run_benchmark(
            SUITE[key],
            seed=seed,
            enola_config=enola_config,
            params=params,
            validate=validate,
        )
        card.rows.append(
            score_row(result, magnitude_tolerance_decades)
        )
    return card


__all__ = [
    "CHECK_NAMES",
    "RowScore",
    "Scorecard",
    "run_scorecard",
    "score_row",
]
