"""Parameter-sweep utilities: seed averaging and knob studies.

The paper reports single-seed numbers; production practice averages over
instances.  This module runs a benchmark over several seeds, aggregates
mean/std of every headline metric, and provides the generic knob-sweep
machinery used by the ablation benchmarks (alpha, grouping strategy,
intra-stage ordering, AOD count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..baselines.enola import EnolaConfig
from ..benchsuite.suite import BenchmarkSpec
from ..circuits.circuit import Circuit
from ..core.config import PowerMoveConfig
from ..engine.engine import CompilationEngine
from ..fidelity.model import evaluate_program
from ..pipeline.registry import create_compiler
from .experiments import SCENARIOS, run_scenarios_batch


@dataclass(frozen=True)
class Statistic:
    """Mean/std/extremes of one metric over a sweep.

    Attributes:
        mean: Arithmetic mean.
        std: Population standard deviation.
        minimum: Smallest observed value.
        maximum: Largest observed value.
        count: Number of observations.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Statistic":
        """Aggregate a non-empty sequence of observations."""
        if not values:
            raise ValueError("cannot aggregate zero observations")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            count=n,
        )


@dataclass
class SeedSweepResult:
    """Seed-averaged scenario metrics of one benchmark.

    Attributes:
        key: Benchmark name.
        seeds: The seeds run.
        fidelity: scenario -> :class:`Statistic` of total fidelity.
        execution_time_us: scenario -> :class:`Statistic` of T_exe (us).
        fidelity_improvement: Statistic of the Table 3 improvement ratio.
        texe_improvement: Statistic of the T_exe improvement ratio.
    """

    key: str
    seeds: list[int] = field(default_factory=list)
    fidelity: dict[str, Statistic] = field(default_factory=dict)
    execution_time_us: dict[str, Statistic] = field(default_factory=dict)
    fidelity_improvement: Statistic | None = None
    texe_improvement: Statistic | None = None


def seed_sweep(
    spec: BenchmarkSpec,
    seeds: Sequence[int] = (0, 1, 2),
    enola_config: EnolaConfig | None = None,
    num_aods: int = 1,
    validate: bool = False,
    engine: CompilationEngine | None = None,
) -> SeedSweepResult:
    """Run a benchmark over several seeds and aggregate every metric.

    Both the circuit instance (where the family is random) and the
    compiler RNGs take the sweep seed, so the spread covers instance and
    compiler randomness together.  All seeds' compilations go out as a
    single engine batch, so a multi-worker ``engine`` runs the whole
    sweep in parallel.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    per_scenario_fid: dict[str, list[float]] = {s: [] for s in SCENARIOS}
    per_scenario_texe: dict[str, list[float]] = {s: [] for s in SCENARIOS}
    fid_improvements: list[float] = []
    texe_improvements: list[float] = []

    circuits = [spec.build(seed) for seed in seeds]
    results = run_scenarios_batch(
        circuits,
        num_aods=num_aods,
        seeds=seeds,
        enola_config=enola_config,
        validate=validate,
        engine=engine,
    )
    for result in results:
        for scenario in SCENARIOS:
            report = result[scenario].fidelity
            per_scenario_fid[scenario].append(report.total)
            per_scenario_texe[scenario].append(report.execution_time_us)
        fid_improvements.append(result.fidelity_improvement)
        texe_improvements.append(result.texe_improvement)

    return SeedSweepResult(
        key=spec.key,
        seeds=list(seeds),
        fidelity={
            s: Statistic.of(v) for s, v in per_scenario_fid.items()
        },
        execution_time_us={
            s: Statistic.of(v) for s, v in per_scenario_texe.items()
        },
        fidelity_improvement=Statistic.of(fid_improvements),
        texe_improvement=Statistic.of(texe_improvements),
    )


@dataclass
class KnobSweepPoint:
    """One setting of a swept compiler knob.

    Attributes:
        value: The knob value.
        fidelity: Eq. (1) total fidelity.
        execution_time_us: T_exe (us).
        num_coll_moves: CollMove count of the schedule.
        num_transfers: Transfer count of the schedule.
    """

    value: object
    fidelity: float
    execution_time_us: float
    num_coll_moves: int
    num_transfers: int


def knob_sweep(
    circuit: Circuit,
    knob: str,
    values: Sequence[object],
    base_config: PowerMoveConfig | None = None,
) -> list[KnobSweepPoint]:
    """Compile ``circuit`` once per knob value and measure the outcome.

    Args:
        circuit: The workload.
        knob: A :class:`~repro.core.config.PowerMoveConfig` field name
            (e.g. ``"alpha"``, ``"num_aods"``, ``"intra_stage_ordering"``).
        values: Settings to sweep.
        base_config: Starting configuration for the untouched fields.

    Returns:
        One :class:`KnobSweepPoint` per value, in input order.
    """
    base = base_config or PowerMoveConfig()
    if not hasattr(base, knob):
        raise ValueError(f"unknown PowerMoveConfig field {knob!r}")
    points: list[KnobSweepPoint] = []
    for value in values:
        fields = {
            name: getattr(base, name)
            for name in base.__dataclass_fields__
        }
        fields[knob] = value
        config = PowerMoveConfig(**fields)
        backend = (
            "powermove" if config.use_storage else "powermove-nonstorage"
        )
        result = create_compiler(backend, config).compile(circuit)
        report = evaluate_program(result.program)
        points.append(
            KnobSweepPoint(
                value=value,
                fidelity=report.total,
                execution_time_us=report.execution_time_us,
                num_coll_moves=result.program.num_coll_moves,
                num_transfers=result.program.num_transfers,
            )
        )
    return points


def best_point(points: Sequence[KnobSweepPoint]) -> KnobSweepPoint:
    """The sweep point with the highest fidelity (ties: faster wins)."""
    if not points:
        raise ValueError("empty sweep")
    return max(
        points, key=lambda p: (p.fidelity, -p.execution_time_us)
    )


__all__ = [
    "KnobSweepPoint",
    "SeedSweepResult",
    "Statistic",
    "best_point",
    "knob_sweep",
    "seed_sweep",
]
