"""High-level textual reports combining tables and figures."""

from __future__ import annotations

from ..baselines.enola import EnolaConfig
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from .figures import FIGURE6_FAMILIES, figure6_panel, figure7_series
from .tables import render_table2, reproduce_table3


def full_report(
    keys: tuple[str, ...] | None = None,
    seed: int = 0,
    enola_config: EnolaConfig | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
    include_figures: bool = True,
    figure6_families: tuple[str, ...] | None = None,
) -> str:
    """Regenerate every evaluation artefact as one text report.

    Args:
        keys: Table 3 benchmark subset (all 23 rows by default).
        seed: Global experiment seed.
        enola_config: Lighter Enola knobs for quick runs.
        params: Hardware constants.
        include_figures: Also regenerate Fig. 6 and Fig. 7 series.
        figure6_families: Subset of Fig. 6 panels (all five by default).

    Returns:
        The concatenated plain-text report.
    """
    parts = [render_table2()]
    table3 = reproduce_table3(
        keys=keys, seed=seed, enola_config=enola_config, params=params
    )
    parts.append(table3.render())
    if include_figures:
        families = figure6_families or tuple(FIGURE6_FAMILIES)
        for family in families:
            panel = figure6_panel(
                family, seed=seed, enola_config=enola_config, params=params
            )
            parts.append(panel.render())
        parts.append(figure7_series(seed=seed, params=params).render())
    return "\n\n\n".join(parts)


__all__ = ["full_report"]
