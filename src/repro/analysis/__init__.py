"""Experiment harness: Table 3, Fig. 6 and Fig. 7 reproduction."""

from .experiments import (
    SCENARIOS,
    BenchmarkResult,
    ScenarioResult,
    run_benchmark,
    run_scenarios,
    run_scenarios_batch,
)
from .figures import (
    FIGURE6_FAMILIES,
    FIGURE7_KEYS,
    Figure6Panel,
    Figure7Series,
    figure6_panel,
    figure7_series,
)
from .report import full_report
from .scorecard import (
    CHECK_NAMES,
    RowScore,
    Scorecard,
    run_scorecard,
    score_row,
)
from .sweeps import (
    KnobSweepPoint,
    SeedSweepResult,
    Statistic,
    best_point,
    knob_sweep,
    seed_sweep,
)
from .tables import (
    PAPER_TABLE3,
    Table3,
    Table3Row,
    render_table2,
    reproduce_table3,
)
from .visualize import (
    describe_instruction,
    program_trace,
    render_layout,
    render_moves,
    render_occupancy,
)
from .workloads import WorkloadProfile, profile_circuit, render_profiles

__all__ = [
    "BenchmarkResult",
    "FIGURE6_FAMILIES",
    "FIGURE7_KEYS",
    "Figure6Panel",
    "Figure7Series",
    "CHECK_NAMES",
    "KnobSweepPoint",
    "PAPER_TABLE3",
    "RowScore",
    "SCENARIOS",
    "ScenarioResult",
    "Scorecard",
    "SeedSweepResult",
    "Statistic",
    "Table3",
    "Table3Row",
    "WorkloadProfile",
    "best_point",
    "describe_instruction",
    "figure6_panel",
    "figure7_series",
    "full_report",
    "knob_sweep",
    "profile_circuit",
    "program_trace",
    "render_profiles",
    "run_scorecard",
    "score_row",
    "seed_sweep",
    "render_layout",
    "render_moves",
    "render_occupancy",
    "render_table2",
    "reproduce_table3",
    "run_benchmark",
    "run_scenarios",
    "run_scenarios_batch",
]
