"""Table reproductions (Table 2 and Table 3 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.enola import EnolaConfig
from ..benchsuite.suite import PAPER_ORDER, SUITE, table2_rows
from ..engine.engine import CompilationEngine
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..utils.text import format_table
from .experiments import BenchmarkResult, run_scenarios_batch

#: Paper's Table 3 numbers (fidelity, T_exe us, T_comp s) for comparison
#: in EXPERIMENTS.md; keyed by benchmark row.  Values are
#: (enola_fid, ns_fid, ws_fid, enola_texe, ns_texe, ws_texe,
#:  enola_tcomp, pm_tcomp).
PAPER_TABLE3: dict[str, tuple] = {
    "QAOA-regular3-30": (0.48, 0.64, 0.68, 13198.04, 4680.72, 6116.19, 128.32, 41.33),
    "QAOA-regular3-40": (0.34, 0.53, 0.57, 17249.38, 5601.12, 8998.75, 144.70, 41.50),
    "QAOA-regular3-50": (0.23, 0.43, 0.49, 21087.88, 7135.26, 9582.99, 142.30, 41.49),
    "QAOA-regular3-60": (0.14, 0.35, 0.39, 25449.73, 8134.16, 12440.46, 140.64, 44.62),
    "QAOA-regular3-80": (0.05, 0.22, 0.24, 33553.14, 10490.10, 17746.76, 145.91, 45.38),
    "QAOA-regular3-100": (0.01, 0.10, 0.14, 44038.42, 16122.96, 21710.11, 167.22, 45.64),
    "QAOA-regular4-30": (0.40, 0.56, 0.56, 16450.23, 6056.05, 12127.03, 256.88, 65.33),
    "QAOA-regular4-40": (0.24, 0.45, 0.42, 23365.45, 7394.03, 17608.55, 266.53, 66.07),
    "QAOA-regular4-50": (0.14, 0.34, 0.31, 30079.41, 9928.27, 20013.50, 253.94, 63.34),
    "QAOA-regular4-60": (0.07, 0.26, 0.23, 36332.16, 11306.93, 22594.20, 278.18, 68.89),
    "QAOA-regular4-80": (0.01, 0.10, 0.09, 49182.73, 19631.36, 32934.94, 291.68, 72.17),
    "QAOA-random-20": (0.23, 0.39, 0.47, 32768.58, 11782.99, 16845.33, 960.37, 136.03),
    "QAOA-random-30": (0.03, 0.11, 0.16, 68113.52, 25391.69, 38051.69, 1791.66, 193.28),
    "QFT-18": (8.95e-4, 4.87e-3, 0.05, 108173.62, 36810.15, 107637.68, 10917.80, 347.47),
    "QFT-29": (7.12e-9, 9.99e-7, 5.78e-4, 239150.00, 89670.26, 237315.37, 24116.00, 511.97),
    "BV-14": (0.57, 0.60, 0.91, 5583.98, 3034.20, 5282.11, 669.48, 28.79),
    "BV-50": (0.04, 0.05, 0.84, 10118.96, 5631.26, 9255.85, 1710.91, 17.95),
    "BV-70": (6.92e-4, 1.05e-3, 0.75, 17620.11, 10277.27, 15942.37, 4334.5, 20.30),
    "VQE-30": (0.71, 0.81, 0.79, 5436.18, 1688.03, 2981.71, 57.62, 29.68),
    "VQE-50": (0.48, 0.67, 0.63, 10196.50, 2946.26, 5354.37, 56.58, 29.86),
    "QSIM-rand-0.3-10": (0.51, 0.60, 0.74, 13353.05, 4886.36, 9713.39, 760.19, 76.01),
    "QSIM-rand-0.3-20": (0.05, 0.08, 0.42, 37796.35, 16636.02, 35550.68, 5740.76, 107.03),
    "QSIM-rand-0.3-40": (3.94e-6, 2.39e-5, 0.14, 93062.71, 45424.55, 89418.81, 8283.45, 127.95),
}


@dataclass
class Table3Row:
    """One rendered Table 3 row."""

    key: str
    num_qubits: int
    enola_fidelity: float
    ns_fidelity: float
    ws_fidelity: float
    fidelity_improvement: float
    enola_texe_us: float
    ns_texe_us: float
    ws_texe_us: float
    texe_improvement: float
    enola_tcomp_s: float
    pm_tcomp_s: float
    tcomp_improvement: float

    @classmethod
    def from_result(cls, result: BenchmarkResult) -> "Table3Row":
        """Distil one benchmark's scenarios into a table row."""
        enola = result["enola"]
        ns = result["pm_non_storage"]
        ws = result["pm_with_storage"]
        return cls(
            key=result.key,
            num_qubits=result.num_qubits,
            enola_fidelity=enola.fidelity.total,
            ns_fidelity=ns.fidelity.total,
            ws_fidelity=ws.fidelity.total,
            fidelity_improvement=result.fidelity_improvement,
            enola_texe_us=enola.execution_time_us,
            ns_texe_us=ns.execution_time_us,
            ws_texe_us=ws.execution_time_us,
            texe_improvement=result.texe_improvement,
            enola_tcomp_s=enola.compile_time,
            pm_tcomp_s=(ns.compile_time + ws.compile_time) / 2.0,
            tcomp_improvement=result.tcomp_improvement,
        )


@dataclass
class Table3:
    """The full Table 3 reproduction."""

    rows: list[Table3Row] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text rendering in the paper's column layout."""
        headers = [
            "Benchmark",
            "Enola Fid.",
            "Ours Fid.(ns)",
            "Ours Fid.(ws)",
            "Fid. Improv.",
            "Enola Texe(us)",
            "Ours Texe(ns)",
            "Ours Texe(ws)",
            "Texe Improv.",
            "Enola Tcomp(s)",
            "Ours Tcomp(s)",
            "Tcomp Improv.",
        ]
        body = [
            [
                row.key,
                row.enola_fidelity,
                row.ns_fidelity,
                row.ws_fidelity,
                row.fidelity_improvement,
                row.enola_texe_us,
                row.ns_texe_us,
                row.ws_texe_us,
                row.texe_improvement,
                row.enola_tcomp_s,
                row.pm_tcomp_s,
                row.tcomp_improvement,
            ]
            for row in self.rows
        ]
        return format_table(headers, body, title="Table 3 (reproduction)")


def reproduce_table3(
    keys: tuple[str, ...] | None = None,
    seed: int = 0,
    num_aods: int = 1,
    enola_config: EnolaConfig | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
    validate: bool = True,
    engine: CompilationEngine | None = None,
    backend: str = "powermove",
    arch: str | None = None,
) -> Table3:
    """Run the Table 3 experiment over ``keys`` (all 23 rows by default).

    The full suite at paper scale takes minutes (Enola's annealing and MIS
    restarts dominate, as in the paper); pass a subset of keys, a lighter
    :class:`EnolaConfig`, or a multi-worker ``engine`` for quick runs.
    All rows' compilations are submitted as one engine batch, so a
    parallel engine overlaps the whole table.

    Args:
        backend: Registry backend filling the "Ours (ws)" columns --
            swap in an ablation variant (``"powermove-noreorder"``, ...)
            to produce its Table 3 without touching compiler code.
        arch: Optional architecture-catalog entry every scenario
            compiles onto (see ``repro architectures``).
    """
    ws_key = "pm_with_storage" if backend == "powermove" else backend
    circuits = [SUITE[key].build(seed) for key in keys or PAPER_ORDER]
    results = run_scenarios_batch(
        circuits,
        num_aods=num_aods,
        seeds=seed,
        enola_config=enola_config,
        params=params,
        validate=validate,
        engine=engine,
        scenarios=("enola", "pm_non_storage", ws_key),
        arch=arch,
    )
    table = Table3()
    for result in results:
        if ws_key != "pm_with_storage":
            result.scenarios["pm_with_storage"] = result.scenarios[ws_key]
        table.rows.append(Table3Row.from_result(result))
    return table


def render_table2() -> str:
    """Plain-text reproduction of Table 2 (benchmark configurations)."""
    headers = [
        "Name",
        "#Qubits",
        "Compute Zone (um^2)",
        "Inter Zone (um^2)",
        "Storage Zone (um^2)",
    ]
    body = [
        [
            row["name"],
            row["num_qubits"],
            row["compute_zone_um"],
            row["inter_zone_um"],
            row["storage_zone_um"],
        ]
        for row in table2_rows()
    ]
    return format_table(headers, body, title="Table 2 (reproduction)")


__all__ = [
    "PAPER_TABLE3",
    "Table3",
    "Table3Row",
    "render_table2",
    "reproduce_table3",
]
