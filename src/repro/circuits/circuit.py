"""Quantum circuit container for the PowerMove IR.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
applications plus optional barriers and measurements.  It is intentionally
minimal: the compiler only needs gate order, qubit sets and diagonality.

Barriers participate in commuting-block analysis (they end the current block
on their qubits); measurements are recorded but ignored by the compiler,
matching the paper's circuit model in which read-out happens once at the end.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .gates import Gate, gate_spec


@dataclass(frozen=True)
class Barrier:
    """Scheduling barrier over ``qubits`` (all qubits when empty)."""

    qubits: tuple[int, ...] = ()


@dataclass(frozen=True)
class Measure:
    """Terminal measurement of ``qubit`` into classical bit ``clbit``."""

    qubit: int
    clbit: int


Operation = Gate | Barrier | Measure


class CircuitError(ValueError):
    """Raised on structurally invalid circuit construction."""


class Circuit:
    """An ordered quantum circuit on ``num_qubits`` qubits.

    Example:
        >>> from repro.circuits import Circuit
        >>> qc = Circuit(3, name="demo")
        >>> qc.h(0)
        >>> qc.cz(0, 1)
        >>> qc.rzz(0.5, 1, 2)
        >>> qc.num_two_qubit_gates
        2
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError("circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._name = name
        self._ops: list[Operation] = []
        self._cached_digest: str | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the circuit."""
        return self._num_qubits

    @property
    def name(self) -> str:
        """Human-readable circuit name (used in reports)."""
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value
        self._cached_digest = None

    @property
    def operations(self) -> tuple[Operation, ...]:
        """All operations (gates, barriers, measurements) in order."""
        return tuple(self._ops)

    @property
    def gates(self) -> list[Gate]:
        """Only the gate operations, in order."""
        return [op for op in self._ops if isinstance(op, Gate)]

    @property
    def two_qubit_gates(self) -> list[Gate]:
        """Only the two-qubit gates, in order."""
        return [g for g in self.gates if g.is_two_qubit]

    @property
    def one_qubit_gates(self) -> list[Gate]:
        """Only the one-qubit gates, in order."""
        return [g for g in self.gates if not g.is_two_qubit]

    @property
    def num_gates(self) -> int:
        """Total gate count (barriers and measurements excluded)."""
        return len(self.gates)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (``g2`` in the paper's Eq. 1)."""
        return len(self.two_qubit_gates)

    @property
    def num_one_qubit_gates(self) -> int:
        """Number of one-qubit gates (``g1`` in the paper's Eq. 1)."""
        return len(self.one_qubit_gates)

    @property
    def depth(self) -> int:
        """Standard circuit depth over gate operations."""
        level: dict[int, int] = {}
        depth = 0
        for gate in self.gates:
            start = max((level.get(q, 0) for q in gate.qubits), default=0)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, op: Operation) -> None:
        """Append a gate, barrier or measurement, validating qubit bounds."""
        if isinstance(op, Gate):
            self._check_qubits(op.qubits)
        elif isinstance(op, Barrier):
            self._check_qubits(op.qubits)
        elif isinstance(op, Measure):
            self._check_qubits((op.qubit,))
        else:  # pragma: no cover - defensive
            raise CircuitError(f"unsupported operation type {type(op)!r}")
        self._ops.append(op)
        self._cached_digest = None

    def extend(self, ops: Iterable[Operation]) -> None:
        """Append many operations in order."""
        for op in ops:
            self.append(op)

    def add_gate(self, name: str, qubits: Sequence[int], *params: float) -> Gate:
        """Construct, validate, append and return a gate by name."""
        gate = Gate(name, tuple(qubits), tuple(params))
        self.append(gate)
        return gate

    def barrier(self, *qubits: int) -> None:
        """Append a barrier (over all qubits when none are given)."""
        self.append(Barrier(tuple(qubits)))

    def measure_all(self) -> None:
        """Append terminal measurements on every qubit."""
        for q in range(self._num_qubits):
            self.append(Measure(q, q))

    def _check_qubits(self, qubits: Sequence[int]) -> None:
        for q in qubits:
            if not 0 <= q < self._num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for {self._num_qubits}-qubit circuit"
                )

    # ------------------------------------------------------------------
    # Gate shorthands (mirror OpenQASM names)
    # ------------------------------------------------------------------

    def h(self, q: int) -> None:
        """Hadamard."""
        self.add_gate("h", (q,))

    def x(self, q: int) -> None:
        """Pauli X."""
        self.add_gate("x", (q,))

    def z(self, q: int) -> None:
        """Pauli Z."""
        self.add_gate("z", (q,))

    def s(self, q: int) -> None:
        """Phase gate S."""
        self.add_gate("s", (q,))

    def sdg(self, q: int) -> None:
        """Inverse phase gate."""
        self.add_gate("sdg", (q,))

    def rx(self, theta: float, q: int) -> None:
        """X rotation."""
        self.add_gate("rx", (q,), theta)

    def ry(self, theta: float, q: int) -> None:
        """Y rotation."""
        self.add_gate("ry", (q,), theta)

    def rz(self, theta: float, q: int) -> None:
        """Z rotation (diagonal)."""
        self.add_gate("rz", (q,), theta)

    def cz(self, a: int, b: int) -> None:
        """Controlled-Z (native CZ-class)."""
        self.add_gate("cz", (a, b))

    def cp(self, theta: float, a: int, b: int) -> None:
        """Controlled-phase (native CZ-class)."""
        self.add_gate("cp", (a, b), theta)

    def rzz(self, theta: float, a: int, b: int) -> None:
        """ZZ interaction (native CZ-class)."""
        self.add_gate("rzz", (a, b), theta)

    def cx(self, control: int, target: int) -> None:
        """CNOT (requires transpilation before compilation)."""
        self.add_gate("cx", (control, target))

    def swap(self, a: int, b: int) -> None:
        """SWAP (requires transpilation before compilation)."""
        self.add_gate("swap", (a, b))

    # ------------------------------------------------------------------
    # Queries used by the compiler
    # ------------------------------------------------------------------

    def is_native(self) -> bool:
        """True when all two-qubit gates are CZ-class (compilable as-is)."""
        return all(g.is_cz_class for g in self.two_qubit_gates)

    def interaction_pairs(self) -> list[tuple[int, int]]:
        """Ordered (min, max) qubit pairs of all two-qubit gates."""
        return [
            (min(g.qubits), max(g.qubits)) for g in self.two_qubit_gates
        ]

    def used_qubits(self) -> set[int]:
        """Set of qubits touched by at least one gate."""
        used: set[int] = set()
        for gate in self.gates:
            used.update(gate.qubits)
        return used

    def copy(self) -> "Circuit":
        """Shallow copy (gates are immutable, so this is safe)."""
        dup = Circuit(self._num_qubits, self._name)
        dup._ops = list(self._ops)
        return dup

    def digest(self) -> str:
        """Stable content hash of the circuit (hex SHA-256).

        The digest covers the qubit count, the name and every operation
        *in order* (gate names, qubit tuples, exact parameter values,
        barriers and measurements), so it is order-sensitive and changes
        whenever any gate changes.  It is computed with :mod:`hashlib`
        over a canonical JSON encoding -- never Python's salted ``hash``
        -- so it is identical across processes and interpreter runs and
        safe to use as a content-addressed cache key.  The result is
        memoised and invalidated on mutation, so repeated cache-key
        derivations over a shared circuit hash it once.
        """
        if self._cached_digest is not None:
            return self._cached_digest
        ops: list[list] = []
        for op in self._ops:
            if isinstance(op, Gate):
                ops.append(["g", op.name, list(op.qubits), list(op.params)])
            elif isinstance(op, Barrier):
                ops.append(["b", list(op.qubits)])
            else:
                ops.append(["m", op.qubit, op.clbit])
        payload = json.dumps(
            [self._num_qubits, self._name, ops],
            separators=(",", ":"),
            sort_keys=True,
        )
        self._cached_digest = hashlib.sha256(
            payload.encode("utf-8")
        ).hexdigest()
        return self._cached_digest

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits and self._ops == other._ops
        )

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self._name!r}, num_qubits={self._num_qubits}, "
            f"gates={self.num_gates}, two_qubit={self.num_two_qubit_gates})"
        )


def concat(first: Circuit, second: Circuit, name: str | None = None) -> Circuit:
    """Concatenate two circuits on the same qubit count."""
    if first.num_qubits != second.num_qubits:
        raise CircuitError("cannot concatenate circuits of different widths")
    out = Circuit(first.num_qubits, name or f"{first.name}+{second.name}")
    out.extend(first.operations)
    out.extend(second.operations)
    return out


__all__ = [
    "Barrier",
    "Circuit",
    "CircuitError",
    "Measure",
    "Operation",
    "concat",
    "gate_spec",
]
