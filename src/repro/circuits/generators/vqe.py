"""VQE benchmark circuit: hardware-efficient entangling ansatz.

Per layer: a wall of RY rotations followed by a CZ entangler block, plus a
final rotation wall.

Two entangler topologies are provided:

* ``"linear"`` (default) -- a CZ chain ``(0,1),(1,2),...,(n-2,n-1)``:
  ``n-1`` gates per layer that partition into two dense stages.  The
  paper calls its VQE workload "the standard full-entanglement ansatz",
  but its own Table 3 numbers pin the circuit down: VQE-30 at Enola
  fidelity 0.71 and T_exe 5,436 us is consistent with 29 two-qubit gates
  (0.995^29 = 0.865 times matching decoherence/transfer terms), i.e. a
  chain that *fully entangles* the register -- not the all-pairs "full"
  topology of e.g. Qiskit's TwoLocal, which would need 435 gates and an
  order of magnitude more time.

* ``"full"`` -- CZ on every pair (i < j): one maximally dense commuting
  block whose stage partition needs ~n-1 colours; useful as a stress
  test for the stage scheduler.
"""

from __future__ import annotations

import math

from ...utils.rng import make_rng
from ..circuit import Circuit

_ENTANGLEMENTS = ("linear", "full")


def vqe_ansatz(
    n: int,
    layers: int = 1,
    seed: int | None = 0,
    entanglement: str = "linear",
) -> Circuit:
    """Hardware-efficient VQE ansatz on ``n`` qubits.

    Args:
        n: Number of qubits.
        layers: Number of (rotation wall, entangler) repetitions.
        seed: Seed for the random rotation angles.
        entanglement: ``"linear"`` (paper benchmark) or ``"full"``.
    """
    if n < 2:
        raise ValueError("VQE ansatz needs at least two qubits")
    if layers < 1:
        raise ValueError("need at least one layer")
    if entanglement not in _ENTANGLEMENTS:
        raise ValueError(
            f"unknown entanglement {entanglement!r}; "
            f"choose from {_ENTANGLEMENTS}"
        )
    rng = make_rng(seed)
    circuit = Circuit(n, name=f"VQE-{n}")
    for _ in range(layers):
        for q in range(n):
            circuit.ry(rng.uniform(0.0, 2.0 * math.pi), q)
        if entanglement == "linear":
            for a in range(n - 1):
                circuit.cz(a, a + 1)
        else:
            for a in range(n):
                for b in range(a + 1, n):
                    circuit.cz(a, b)
    for q in range(n):
        circuit.ry(rng.uniform(0.0, 2.0 * math.pi), q)
    return circuit


def vqe_full_entanglement(
    n: int,
    layers: int = 1,
    seed: int | None = 0,
) -> Circuit:
    """All-pairs CZ variant (one maximally dense commuting block)."""
    return vqe_ansatz(n, layers=layers, seed=seed, entanglement="full")


def vqe_linear_entanglement(
    n: int,
    layers: int = 1,
    seed: int | None = 0,
) -> Circuit:
    """CZ-chain variant (the Table 2/3 benchmark workload)."""
    return vqe_ansatz(n, layers=layers, seed=seed, entanglement="linear")


__all__ = ["vqe_ansatz", "vqe_full_entanglement", "vqe_linear_entanglement"]
