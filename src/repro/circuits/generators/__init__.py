"""Benchmark circuit generators matching the paper's evaluation workloads."""

from .bv import bernstein_vazirani, bv_secret
from .qaoa import qaoa_random, qaoa_regular
from .qft import qft
from .qsim import append_pauli_rotation, qsim_random, random_pauli_strings
from .vqe import vqe_ansatz, vqe_full_entanglement, vqe_linear_entanglement

__all__ = [
    "append_pauli_rotation",
    "bernstein_vazirani",
    "bv_secret",
    "qaoa_random",
    "qaoa_regular",
    "qft",
    "qsim_random",
    "random_pauli_strings",
    "vqe_ansatz",
    "vqe_full_entanglement",
    "vqe_linear_entanglement",
]
