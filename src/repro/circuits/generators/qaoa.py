"""QAOA benchmark circuits (Sec. 7.1 of the paper).

Two families are used in the evaluation:

* **QAOA-regular-d** -- MaxCut QAOA on a random *d*-regular graph; one
  ``rzz`` per graph edge per layer.
* **QAOA-random** -- "randomly placed ZZ gates between qubit pairs (50%
  probability)", i.e. the interaction graph is Erdos-Renyi G(n, p).

Both produce the canonical p-layer QAOA template: a Hadamard wall, then per
layer the commuting ZZ cost block followed by the RX mixer wall.  All ZZ
gates within a layer commute, so each layer contributes exactly one CZ
block -- the dense-stage regime the paper's Fig. 6(a) analyses.
"""

from __future__ import annotations

import networkx as nx

from ...utils.rng import make_rng
from ..circuit import Circuit


def _qaoa_from_edges(
    n: int,
    edges: list[tuple[int, int]],
    layers: int,
    gamma: float,
    beta: float,
    name: str,
) -> Circuit:
    circuit = Circuit(n, name=name)
    for q in range(n):
        circuit.h(q)
    for layer in range(layers):
        angle = gamma * (layer + 1)
        for a, b in edges:
            circuit.rzz(angle, a, b)
        for q in range(n):
            circuit.rx(2.0 * beta * (layer + 1), q)
    return circuit


def qaoa_regular(
    n: int,
    degree: int = 3,
    layers: int = 1,
    seed: int | None = 0,
    gamma: float = 0.7,
    beta: float = 0.3,
) -> Circuit:
    """QAOA on a random ``degree``-regular graph with ``n`` nodes.

    Args:
        n: Number of qubits (graph nodes); ``n * degree`` must be even.
        degree: Graph regularity (3 and 4 in the paper).
        layers: QAOA depth p.
        seed: Seed for the random regular graph.
        gamma: Cost-layer angle.
        beta: Mixer-layer angle.
    """
    if n <= degree:
        raise ValueError(f"need n > degree, got n={n}, degree={degree}")
    if (n * degree) % 2 != 0:
        raise ValueError(f"no {degree}-regular graph on {n} nodes exists")
    graph = nx.random_regular_graph(degree, n, seed=seed)
    edges = sorted((min(a, b), max(a, b)) for a, b in graph.edges())
    return _qaoa_from_edges(
        n, edges, layers, gamma, beta, name=f"QAOA-regular{degree}-{n}"
    )


def qaoa_random(
    n: int,
    edge_probability: float = 0.5,
    layers: int = 1,
    seed: int | None = 0,
    gamma: float = 0.7,
    beta: float = 0.3,
) -> Circuit:
    """QAOA with ZZ gates on random qubit pairs (paper default p = 0.5)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    edges = [
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if rng.random() < edge_probability
    ]
    return _qaoa_from_edges(
        n, edges, layers, gamma, beta, name=f"QAOA-random-{n}"
    )


__all__ = ["qaoa_random", "qaoa_regular"]
