"""Random Pauli-string quantum-simulation (QSim) benchmark circuits.

Following the paper's setup: each circuit Trotterises ``num_strings``
(default 10) random Pauli strings; each qubit independently carries a
non-identity Pauli with probability ``pauli_probability`` (default 0.3),
chosen uniformly from {X, Y, Z}.

Each string exponential ``exp(-i theta/2 P)`` is realised canonically:
basis change into Z, a CX entangling ladder over the support, an RZ on the
last support qubit, then the mirrored ladder and basis change.  After CX
decomposition the intermediate Hadamards fence the ladder CZs into many
small blocks, making QSim (like BV) an excitation-error-dominated workload
(paper Fig. 6(b)).
"""

from __future__ import annotations

import math

from ...utils.rng import make_rng
from ..circuit import Circuit

_PAULIS = ("X", "Y", "Z")


def random_pauli_strings(
    n: int,
    num_strings: int,
    pauli_probability: float,
    seed: int | None,
) -> list[dict[int, str]]:
    """Sample the benchmark's random Pauli strings as {qubit: pauli} maps.

    Strings that come out empty (all identity) are resampled so every
    string contributes at least a single-qubit rotation.
    """
    if not 0.0 < pauli_probability <= 1.0:
        raise ValueError("pauli_probability must be in (0, 1]")
    rng = make_rng(seed)
    strings: list[dict[int, str]] = []
    while len(strings) < num_strings:
        string = {
            q: rng.choice(_PAULIS)
            for q in range(n)
            if rng.random() < pauli_probability
        }
        if string:
            strings.append(string)
    return strings


def _basis_change(circuit: Circuit, support: dict[int, str], invert: bool) -> None:
    for q, pauli in sorted(support.items()):
        if pauli == "X":
            circuit.h(q)
        elif pauli == "Y":
            if invert:
                circuit.h(q)
                circuit.s(q)
            else:
                circuit.sdg(q)
                circuit.h(q)


def append_pauli_rotation(
    circuit: Circuit, support: dict[int, str], theta: float
) -> None:
    """Append exp(-i theta/2 * P) for the Pauli string ``support``."""
    if not support:
        return
    qubits = sorted(support)
    _basis_change(circuit, support, invert=False)
    for a, b in zip(qubits, qubits[1:]):
        circuit.cx(a, b)
    circuit.rz(theta, qubits[-1])
    for a, b in reversed(list(zip(qubits, qubits[1:]))):
        circuit.cx(a, b)
    _basis_change(circuit, support, invert=True)


def qsim_random(
    n: int,
    num_strings: int = 10,
    pauli_probability: float = 0.3,
    seed: int | None = 0,
) -> Circuit:
    """Random Pauli-string simulation circuit (paper's QSIM-rand-0.3).

    Args:
        n: Number of qubits.
        num_strings: Number of Trotterised Pauli strings (paper: 10).
        pauli_probability: Per-qubit probability of a non-identity Pauli
            (paper: 0.3).
        seed: Seed for string sampling and rotation angles.
    """
    if n < 2:
        raise ValueError("QSim benchmark needs at least two qubits")
    strings = random_pauli_strings(n, num_strings, pauli_probability, seed)
    rng = make_rng(None if seed is None else seed + 1)
    circuit = Circuit(n, name=f"QSIM-rand-{pauli_probability:g}-{n}")
    for support in strings:
        append_pauli_rotation(circuit, support, rng.uniform(0.1, math.pi))
    return circuit


__all__ = ["append_pauli_rotation", "qsim_random", "random_pauli_strings"]
