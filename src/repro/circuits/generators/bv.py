"""Bernstein-Vazirani benchmark circuit.

Layout: qubits ``0..n-2`` are data qubits, qubit ``n-1`` is the phase
ancilla.  The oracle is one CX from each secret-1 data qubit onto the
ancilla.  After the native CX -> H.CZ.H rewrite, the ancilla Hadamards
fence every CZ into its *own* commuting block, so an n-qubit BV circuit
produces ~n/2 single-gate Rydberg stages with n-2 idle spectator qubits
each -- the workload where the storage zone matters most (Table 3's
BV-70 row: Enola 6.9e-4 vs PowerMove-with-storage 0.75).
"""

from __future__ import annotations

from ...utils.rng import make_rng
from ..circuit import Circuit


def bv_secret(n_data: int, seed: int | None = 0) -> tuple[int, ...]:
    """Random secret string with an even split of 0s and 1s (paper setup)."""
    if n_data <= 0:
        raise ValueError("need at least one data qubit")
    rng = make_rng(seed)
    n_ones = n_data // 2
    bits = [1] * n_ones + [0] * (n_data - n_ones)
    rng.shuffle(bits)
    return tuple(bits)


def bernstein_vazirani(
    n: int,
    secret: tuple[int, ...] | None = None,
    seed: int | None = 0,
) -> Circuit:
    """The n-qubit BV circuit (n includes the ancilla).

    Args:
        n: Total qubit count; ``n - 1`` data qubits plus one ancilla.
        secret: Explicit secret bit string of length ``n - 1``; randomly
            generated (even 0/1 split) when omitted.
        seed: Seed used when ``secret`` is omitted.
    """
    if n < 2:
        raise ValueError("BV needs one data qubit and one ancilla")
    n_data = n - 1
    if secret is None:
        secret = bv_secret(n_data, seed)
    if len(secret) != n_data:
        raise ValueError(f"secret must have length {n_data}")
    if any(bit not in (0, 1) for bit in secret):
        raise ValueError("secret bits must be 0 or 1")
    ancilla = n - 1
    circuit = Circuit(n, name=f"BV-{n}")
    for q in range(n_data):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q, bit in enumerate(secret):
        if bit:
            circuit.cx(q, ancilla)
    for q in range(n_data):
        circuit.h(q)
    return circuit


__all__ = ["bernstein_vazirani", "bv_secret"]
