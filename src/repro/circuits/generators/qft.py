"""Quantum Fourier Transform benchmark circuit.

The textbook construction: per target qubit a Hadamard followed by
controlled-phase rotations from all lower-significance qubits, with the
optional terminal qubit-reversal SWAP network.

``cp`` gates are CZ-class (diagonal) and commute with each other, but each
Hadamard fences its qubit, so the QFT decomposes into O(n) partially
overlapping CZ blocks -- the mixed regime of the paper's Fig. 6(c).
"""

from __future__ import annotations

import math

from ..circuit import Circuit


def qft(
    n: int,
    with_swaps: bool = True,
    approximation_degree: int = 0,
) -> Circuit:
    """The n-qubit QFT.

    Args:
        n: Number of qubits.
        with_swaps: Append the qubit-reversal SWAP network (transpiled to
            CX/CZ later), matching the full textbook transform.
        approximation_degree: Drop the ``approximation_degree`` smallest
            rotation angles (0 = exact QFT).
    """
    if n <= 0:
        raise ValueError("QFT needs at least one qubit")
    if approximation_degree < 0:
        raise ValueError("approximation_degree must be >= 0")
    circuit = Circuit(n, name=f"QFT-{n}")
    for target in range(n):
        circuit.h(target)
        for offset in range(1, n - target):
            # Approximate QFT: drop the `approximation_degree` smallest
            # rotations, i.e. keep only offsets up to n-1-approximation_degree.
            if offset > n - 1 - approximation_degree:
                continue
            angle = math.pi / (2.0**offset)
            circuit.cp(angle, target + offset, target)
    if with_swaps:
        for q in range(n // 2):
            circuit.swap(q, n - 1 - q)
    return circuit


__all__ = ["qft"]
