"""Transpilation to the native NAQC gate set {1Q rotations, CZ-class}.

Neutral-atom hardware natively executes one-qubit Raman rotations and
CZ-class (diagonal two-qubit) gates via Rydberg co-location.  Everything
else is rewritten:

* ``cx control,target``  ->  ``h target; cz control,target; h target``
* ``swap a,b``           ->  three CNOTs, each decomposed as above
* ``crz(t) a,b``         ->  ``rz(t/2) b; cx a,b; rz(-t/2) b; cx a,b``

The CX decomposition is the load-bearing one: it surrounds each CZ with
Hadamards on the target, which *fences* commuting blocks on that qubit.
This is exactly why BV and QSim circuits decompose into many small CZ
blocks (Sec. 7.3 of the paper) and why the storage zone rescues their
fidelity.
"""

from __future__ import annotations

from .circuit import Barrier, Circuit, Measure
from .gates import Gate


class TranspileError(ValueError):
    """Raised when a gate has no known rewrite to the native set."""


def _decompose_cx(control: int, target: int) -> list[Gate]:
    return [
        Gate("h", (target,)),
        Gate("cz", (control, target)),
        Gate("h", (target,)),
    ]


def _decompose_swap(a: int, b: int) -> list[Gate]:
    gates: list[Gate] = []
    gates.extend(_decompose_cx(a, b))
    gates.extend(_decompose_cx(b, a))
    gates.extend(_decompose_cx(a, b))
    return gates


def _decompose_crz(theta: float, control: int, target: int) -> list[Gate]:
    gates: list[Gate] = [Gate("rz", (target,), (theta / 2.0,))]
    gates.extend(_decompose_cx(control, target))
    gates.append(Gate("rz", (target,), (-theta / 2.0,)))
    gates.extend(_decompose_cx(control, target))
    return gates


def decompose_gate(gate: Gate) -> list[Gate]:
    """Rewrite one gate into the native set (identity for native gates)."""
    if not gate.is_two_qubit or gate.is_cz_class:
        return [gate]
    if gate.name == "cx":
        return _decompose_cx(*gate.qubits)
    if gate.name == "swap":
        return _decompose_swap(*gate.qubits)
    if gate.name == "crz":
        return _decompose_crz(gate.params[0], *gate.qubits)
    raise TranspileError(f"no native decomposition for gate {gate}")


def transpile_to_native(circuit: Circuit) -> Circuit:
    """Rewrite every non-native gate; barriers/measures pass through.

    Returns a new circuit whose two-qubit gates are all CZ-class, suitable
    for :func:`repro.circuits.blocks.partition_into_blocks`.
    """
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for op in circuit.operations:
        if isinstance(op, (Barrier, Measure)):
            out.append(op)
            continue
        for gate in decompose_gate(op):
            out.append(gate)
    return out


def count_added_gates(circuit: Circuit) -> dict[str, int]:
    """Report how many 1Q/2Q gates transpilation adds (for sanity checks).

    PowerMove and Enola add *no* two-qubit gates beyond the input program;
    the returned ``two_qubit_delta`` must therefore be ``0`` whenever the
    input's two-qubit gates are CX/CZ-class (SWAP legitimately costs 3).
    """
    native = transpile_to_native(circuit)
    return {
        "one_qubit_delta": native.num_one_qubit_gates
        - circuit.num_one_qubit_gates,
        "two_qubit_delta": native.num_two_qubit_gates
        - circuit.num_two_qubit_gates,
    }


__all__ = [
    "TranspileError",
    "count_added_gates",
    "decompose_gate",
    "transpile_to_native",
]
