"""Quantum circuit substrate: IR, OpenQASM front end, transpiler, generators."""

from .blocks import (
    BlockPartition,
    CZBlock,
    NonNativeGateError,
    partition_into_blocks,
)
from .circuit import Barrier, Circuit, CircuitError, Measure, concat
from .gates import GATE_SPECS, Gate, GateSpec, UnknownGateError, gate_spec
from .qasm import QasmError, load_qasm, parse_qasm, to_qasm
from .transpile import (
    TranspileError,
    count_added_gates,
    decompose_gate,
    transpile_to_native,
)

__all__ = [
    "Barrier",
    "BlockPartition",
    "CZBlock",
    "Circuit",
    "CircuitError",
    "GATE_SPECS",
    "Gate",
    "GateSpec",
    "Measure",
    "NonNativeGateError",
    "QasmError",
    "TranspileError",
    "UnknownGateError",
    "concat",
    "count_added_gates",
    "decompose_gate",
    "gate_spec",
    "load_qasm",
    "parse_qasm",
    "partition_into_blocks",
    "to_qasm",
    "transpile_to_native",
]
