"""Gate model for the PowerMove circuit IR.

The compiler distinguishes two properties of a gate that drive every
downstream decision:

* **Arity** -- one-qubit gates are executed by qubit-specific Raman pulses in
  parallel layers; two-qubit gates require the pair to be co-located within
  the Rydberg radius and one global Rydberg excitation per stage.

* **Diagonality** -- gates that are diagonal in the computational basis
  commute with each other and with CZ.  Diagonal gates therefore never break
  a *commuting CZ block* (Sec. 4.1 of the paper), while non-diagonal
  one-qubit gates (``h``, ``rx``, ...) act as per-qubit barriers between
  blocks.

Two-qubit gates come in two flavours:

* **CZ-class** gates (``cz``, ``cp``, ``rzz``, ...) are diagonal two-qubit
  gates natively executable by one Rydberg co-location.  Following the paper
  (and Enola) each counts as a single two-qubit gate in the fidelity model.

* Non-native two-qubit gates (``cx``, ``swap``) must be transpiled to
  CZ-class gates plus one-qubit gates before compilation; see
  :mod:`repro.circuits.transpile`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: Canonical lower-case gate name (OpenQASM 2 convention).
        num_qubits: Gate arity (1 or 2).
        num_params: Number of real parameters (rotation angles).
        diagonal: True when the unitary is diagonal in the Z basis.
        cz_class: True for diagonal two-qubit gates that execute natively
            via one Rydberg co-location.
    """

    name: str
    num_qubits: int
    num_params: int
    diagonal: bool
    cz_class: bool = False

    def __post_init__(self) -> None:
        if self.cz_class and (self.num_qubits != 2 or not self.diagonal):
            raise ValueError(
                f"gate {self.name!r}: cz_class requires a diagonal 2Q gate"
            )


def _build_registry() -> dict[str, GateSpec]:
    one_qubit = [
        # (name, num_params, diagonal)
        ("id", 0, True),
        ("x", 0, False),
        ("y", 0, False),
        ("z", 0, True),
        ("h", 0, False),
        ("s", 0, True),
        ("sdg", 0, True),
        ("t", 0, True),
        ("tdg", 0, True),
        ("sx", 0, False),
        ("rx", 1, False),
        ("ry", 1, False),
        ("rz", 1, True),
        ("p", 1, True),
        ("u1", 1, True),
        ("u2", 2, False),
        ("u3", 3, False),
        ("u", 3, False),
    ]
    two_qubit = [
        # (name, num_params, diagonal, cz_class)
        ("cz", 0, True, True),
        ("cp", 1, True, True),
        ("cu1", 1, True, True),
        ("crz", 1, False, False),  # not diagonal (phase differs): transpile
        ("rzz", 1, True, True),
        ("cx", 0, False, False),
        ("swap", 0, False, False),
    ]
    registry: dict[str, GateSpec] = {}
    for name, num_params, diagonal in one_qubit:
        registry[name] = GateSpec(name, 1, num_params, diagonal)
    for name, num_params, diagonal, cz_class in two_qubit:
        registry[name] = GateSpec(name, 2, num_params, diagonal, cz_class)
    return registry


#: Registry of all gate types understood by the IR, keyed by name.
GATE_SPECS: dict[str, GateSpec] = _build_registry()


class UnknownGateError(KeyError):
    """Raised when a gate name is not present in :data:`GATE_SPECS`."""


def gate_spec(name: str) -> GateSpec:
    """Look up the :class:`GateSpec` for ``name`` (case-insensitive)."""
    try:
        return GATE_SPECS[name.lower()]
    except KeyError as exc:
        raise UnknownGateError(f"unknown gate {name!r}") from exc


@dataclass(frozen=True)
class Gate:
    """One gate application: a gate type bound to qubits and parameters.

    Instances are immutable and hashable so they can serve as graph vertices
    in the stage-partition algorithm.

    Attributes:
        name: Gate type name; must exist in :data:`GATE_SPECS`.
        qubits: Target qubit indices, in gate-definition order.
        params: Rotation angles (radians), empty for non-parametric gates.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        spec = gate_spec(self.name)
        object.__setattr__(self, "name", self.name.lower())
        if len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"gate {self.name!r} has negative qubit index")
        if len(self.params) != spec.num_params:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )

    @property
    def spec(self) -> GateSpec:
        """The static :class:`GateSpec` of this gate."""
        return gate_spec(self.name)

    @property
    def num_qubits(self) -> int:
        """Gate arity."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for any two-qubit gate (native or not)."""
        return len(self.qubits) == 2

    @property
    def is_cz_class(self) -> bool:
        """True for diagonal two-qubit gates executable in one co-location."""
        return self.spec.cz_class

    @property
    def is_diagonal(self) -> bool:
        """True when the gate commutes with CZ-class gates."""
        return self.spec.diagonal

    def overlaps(self, other: "Gate") -> bool:
        """True when the two gates share at least one qubit."""
        return bool(set(self.qubits) & set(other.qubits))

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy with qubit indices translated through ``mapping``."""
        return Gate(
            self.name,
            tuple(mapping[q] for q in self.qubits),
            self.params,
        )

    def __str__(self) -> str:
        if self.params:
            angles = ",".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({angles}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


def cz(a: int, b: int) -> Gate:
    """Convenience constructor for a CZ gate."""
    return Gate("cz", (a, b))


def h(q: int) -> Gate:
    """Convenience constructor for a Hadamard gate."""
    return Gate("h", (q,))


def rz(theta: float, q: int) -> Gate:
    """Convenience constructor for an RZ rotation."""
    return Gate("rz", (q,), (theta,))


def ry(theta: float, q: int) -> Gate:
    """Convenience constructor for an RY rotation."""
    return Gate("ry", (q,), (theta,))


def rx(theta: float, q: int) -> Gate:
    """Convenience constructor for an RX rotation."""
    return Gate("rx", (q,), (theta,))


def rzz(theta: float, a: int, b: int) -> Gate:
    """Convenience constructor for the diagonal ZZ interaction."""
    return Gate("rzz", (a, b), (theta,))


def cp(theta: float, a: int, b: int) -> Gate:
    """Convenience constructor for a controlled-phase gate."""
    return Gate("cp", (a, b), (theta,))


def cx(control: int, target: int) -> Gate:
    """Convenience constructor for a CNOT gate (requires transpilation)."""
    return Gate("cx", (control, target))


def normalize_angle(theta: float) -> float:
    """Map an angle into ``(-pi, pi]`` for stable comparison/printing."""
    theta = math.fmod(theta, 2.0 * math.pi)
    if theta > math.pi:
        theta -= 2.0 * math.pi
    elif theta <= -math.pi:
        theta += 2.0 * math.pi
    return theta


def qubits_used(gates: Iterable[Gate]) -> set[int]:
    """Union of qubit indices touched by ``gates``."""
    used: set[int] = set()
    for gate in gates:
        used.update(gate.qubits)
    return used
