"""Partition of a circuit into commuting CZ blocks.

The paper (Sec. 2.2, Sec. 4.1) assumes input circuits are synthesised into
alternating layers of one-qubit gates and *CZ blocks*, where each block
consists of mutually commuting CZ-class gates.  Because every CZ-class gate
is diagonal in the computational basis, any two of them commute; the only
thing that separates blocks is a **non-diagonal one-qubit gate** (or a
barrier), which acts as a per-qubit fence.

This module performs that synthesis greedily (ASAP): each CZ-class gate is
placed into the earliest block allowed by the fences on its qubits, which
minimises the number of blocks and hence the number of Rydberg excitation
rounds -- the same convention Enola uses, so comparisons are fair.

The result also records where every one-qubit gate sits: gap ``g`` holds the
one-qubit gates executed between block ``g-1`` and block ``g`` (gap ``0`` is
before the first block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .circuit import Barrier, Circuit, Measure
from .gates import Gate


class NonNativeGateError(ValueError):
    """Raised when a circuit still contains non-CZ-class two-qubit gates."""


@dataclass
class CZBlock:
    """One commuting block of CZ-class gates.

    Attributes:
        index: Position of the block in execution order.
        gates: The CZ-class gates of the block, in input order.
    """

    index: int
    gates: list[Gate] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        """Number of two-qubit gates in the block."""
        return len(self.gates)

    def interacting_qubits(self) -> set[int]:
        """All qubits acted on by some gate of this block."""
        qubits: set[int] = set()
        for gate in self.gates:
            qubits.update(gate.qubits)
        return qubits

    def interaction_graph(self) -> dict[int, list[int]]:
        """Adjacency over *gate indices*: edges join gates sharing a qubit.

        This is the ``CZ_Graph`` input of the paper's Algorithm 1 (stage
        partition): vertices are gates of the block, and two gates conflict
        (must go to different stages) iff they overlap on a qubit.
        """
        by_qubit: dict[int, list[int]] = {}
        for idx, gate in enumerate(self.gates):
            for q in gate.qubits:
                by_qubit.setdefault(q, []).append(idx)
        adjacency: dict[int, set[int]] = {i: set() for i in range(len(self.gates))}
        for members in by_qubit.values():
            for i in members:
                for j in members:
                    if i != j:
                        adjacency[i].add(j)
        return {i: sorted(neigh) for i, neigh in adjacency.items()}

    def __iter__(self):
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)


@dataclass
class BlockPartition:
    """Alternating-layer decomposition of a circuit.

    Attributes:
        num_qubits: Width of the source circuit.
        blocks: CZ blocks in execution order.
        one_qubit_gaps: ``one_qubit_gaps[g]`` lists the one-qubit gates in
            gap ``g`` (before block ``g``); the list has ``len(blocks)+1``
            entries, the final entry holding trailing one-qubit gates.
    """

    num_qubits: int
    blocks: list[CZBlock]
    one_qubit_gaps: list[list[Gate]]

    @property
    def num_blocks(self) -> int:
        """Number of CZ blocks."""
        return len(self.blocks)

    @property
    def num_two_qubit_gates(self) -> int:
        """Total CZ-class gate count across blocks."""
        return sum(block.num_gates for block in self.blocks)

    @property
    def num_one_qubit_gates(self) -> int:
        """Total one-qubit gate count across gaps."""
        return sum(len(gap) for gap in self.one_qubit_gaps)

    def gap_depth(self, gap_index: int) -> int:
        """Sequential pulse depth of a 1Q gap (max gates on one qubit).

        One-qubit gates on distinct qubits run in parallel Raman pulses; a
        chain on the same qubit runs sequentially, so the wall-clock length
        of the gap is this depth times the 1Q gate duration.
        """
        counts: dict[int, int] = {}
        for gate in self.one_qubit_gaps[gap_index]:
            q = gate.qubits[0]
            counts[q] = counts.get(q, 0) + 1
        return max(counts.values(), default=0)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on bugs."""
        assert len(self.one_qubit_gaps) == len(self.blocks) + 1
        for idx, block in enumerate(self.blocks):
            assert block.index == idx
            assert block.num_gates > 0, "empty CZ block"
            for gate in block.gates:
                assert gate.is_cz_class


def partition_into_blocks(circuit: Circuit) -> BlockPartition:
    """Decompose ``circuit`` into commuting CZ blocks and 1Q gaps.

    Args:
        circuit: A *native* circuit: every two-qubit gate must be CZ-class
            (run :func:`repro.circuits.transpile.transpile_to_native` first).

    Returns:
        The :class:`BlockPartition`; blocks are never empty, and the number
        of gaps is ``num_blocks + 1``.

    Raises:
        NonNativeGateError: If a non-CZ-class two-qubit gate is present.
    """
    blocks: list[CZBlock] = []
    gap_gates: dict[int, list[Gate]] = {}

    # avail[q]: earliest block index a CZ-class gate on q may join.
    avail = [0] * circuit.num_qubits
    # last_block[q]: latest block index holding a CZ-class gate on q.
    last_block = [-1] * circuit.num_qubits

    def fence(q: int) -> int:
        """Advance the per-qubit fence past every block touching ``q``."""
        gap = max(avail[q], last_block[q] + 1)
        avail[q] = gap
        return gap

    for op in circuit.operations:
        if isinstance(op, Measure):
            continue
        if isinstance(op, Barrier):
            targets = op.qubits or tuple(range(circuit.num_qubits))
            for q in targets:
                fence(q)
            continue
        gate = op
        if gate.is_two_qubit:
            if not gate.is_cz_class:
                raise NonNativeGateError(
                    f"gate {gate} is not CZ-class; transpile the circuit first"
                )
            a, b = gate.qubits
            blk = max(avail[a], avail[b])
            while blk >= len(blocks):
                blocks.append(CZBlock(index=len(blocks)))
            blocks[blk].gates.append(gate)
            last_block[a] = max(last_block[a], blk)
            last_block[b] = max(last_block[b], blk)
            avail[a] = max(avail[a], blk)
            avail[b] = max(avail[b], blk)
        else:
            q = gate.qubits[0]
            if gate.is_diagonal:
                # Diagonal 1Q gates commute with CZ blocks: place them at
                # the earliest legal gap without fencing later CZ gates.
                gap = avail[q]
            else:
                gap = fence(q)
            gap_gates.setdefault(gap, []).append(gate)

    # Drop trailing empty blocks (possible when fences advanced avail past
    # the last real block) and re-index.
    blocks = [b for b in blocks if b.gates]
    for idx, block in enumerate(blocks):
        block.index = idx

    num_gaps = len(blocks) + 1
    one_qubit_gaps: list[list[Gate]] = [[] for _ in range(num_gaps)]
    for gap, gates in gap_gates.items():
        one_qubit_gaps[min(gap, num_gaps - 1)].extend(gates)

    partition = BlockPartition(
        num_qubits=circuit.num_qubits,
        blocks=blocks,
        one_qubit_gaps=one_qubit_gaps,
    )
    partition.validate()
    return partition


__all__ = [
    "BlockPartition",
    "CZBlock",
    "NonNativeGateError",
    "partition_into_blocks",
]
