"""OpenQASM 2.0 front end for the PowerMove IR.

Supports the subset of OpenQASM 2.0 needed for all paper benchmarks plus
user-defined gate macros:

* ``OPENQASM 2.0;`` header and ``include`` statements (includes are treated
  as bringing the standard ``qelib1.inc`` gates into scope; the file itself
  is not read),
* ``qreg`` / ``creg`` declarations (multiple quantum registers are flattened
  into one index space in declaration order),
* applications of every gate in :data:`repro.circuits.gates.GATE_SPECS`,
  with parameter expressions over ``pi``, literals and ``+ - * / ^``,
* register broadcast (``h q;`` applies ``h`` to every qubit of ``q``),
* ``barrier`` and ``measure`` (single bit and full register),
* ``gate name(params) qargs { ... }`` macro definitions, expanded at
  application time with parameter substitution.

The writer emits circuits back to OpenQASM 2.0 text; ``parse_qasm`` and
``to_qasm`` round-trip for native circuits.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from .circuit import Barrier, Circuit, Measure
from .gates import GATE_SPECS, Gate


class QasmError(ValueError):
    """Raised on malformed OpenQASM input."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


# ---------------------------------------------------------------------------
# Expression evaluation (gate parameters)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>\*\*|[-+*/^()]))"
)

_FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


class _ExprParser:
    """Recursive-descent parser for OpenQASM parameter expressions."""

    def __init__(self, text: str, env: dict[str, float]) -> None:
        self._tokens = self._tokenize(text)
        self._pos = 0
        self._env = env
        self._text = text

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                if text[pos:].strip():
                    raise QasmError(f"bad expression token near {text[pos:]!r}")
                break
            tokens.append(match.group().strip())
            pos = match.end()
        return tokens

    def parse(self) -> float:
        value = self._expr()
        if self._pos != len(self._tokens):
            raise QasmError(f"trailing tokens in expression {self._text!r}")
        return value

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QasmError(f"unexpected end of expression {self._text!r}")
        self._pos += 1
        return token

    def _expr(self) -> float:
        value = self._term()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _term(self) -> float:
        value = self._unary()
        while self._peek() in ("*", "/"):
            op = self._next()
            rhs = self._unary()
            if op == "/":
                if rhs == 0:
                    raise QasmError("division by zero in expression")
                value = value / rhs
            else:
                value = value * rhs
        return value

    def _unary(self) -> float:
        if self._peek() == "-":
            self._next()
            return -self._unary()
        if self._peek() == "+":
            self._next()
            return self._unary()
        return self._power()

    def _power(self) -> float:
        base = self._atom()
        if self._peek() in ("^", "**"):
            self._next()
            exponent = self._unary()
            return base**exponent
        return base

    def _atom(self) -> float:
        token = self._next()
        if token == "(":
            value = self._expr()
            if self._next() != ")":
                raise QasmError(f"missing ')' in expression {self._text!r}")
            return value
        if token == "pi":
            return math.pi
        if token in _FUNCTIONS:
            if self._next() != "(":
                raise QasmError(f"function {token} needs parentheses")
            value = self._expr()
            if self._next() != ")":
                raise QasmError(f"missing ')' after {token}(...)")
            return _FUNCTIONS[token](value)
        if token in self._env:
            return self._env[token]
        try:
            return float(token)
        except ValueError as exc:
            raise QasmError(f"unknown symbol {token!r} in expression") from exc


def evaluate_expression(text: str, env: dict[str, float] | None = None) -> float:
    """Evaluate an OpenQASM parameter expression to a float."""
    return _ExprParser(text, env or {}).parse()


# ---------------------------------------------------------------------------
# Statement-level parsing
# ---------------------------------------------------------------------------

_STATEMENT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\s*\(\s*(?P<params>[^)]*)\s*\))?"
    r"\s*(?P<args>[^;]*)$"
)

_ARG_RE = re.compile(r"^(?P<reg>[A-Za-z_][A-Za-z0-9_]*)(?:\[(?P<index>\d+)\])?$")


@dataclass
class _GateMacro:
    """A user-defined gate awaiting expansion."""

    name: str
    params: list[str]
    qargs: list[str]
    body: list[str] = field(default_factory=list)


@dataclass
class _Register:
    name: str
    size: int
    offset: int


# One alternation, scanned left to right: whichever comment opener
# appears first in the source claims the span.
_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", flags=re.DOTALL)


def _strip_comments(text: str) -> str:
    """Remove ``//`` line comments and ``/* ... */`` block comments.

    The two forms are stripped in a single pass so neither can truncate
    the other: ``//`` inside a block comment (a URL, say) does not eat
    the block's terminator, and ``/*`` inside a line comment stays
    commented out.  A block comment becomes a single space -- it may
    separate two tokens -- while a line comment vanishes (its newline
    survives as the separator).  An unterminated ``/*`` raises instead
    of silently corrupting everything after it.
    """

    def replace(match: re.Match[str]) -> str:
        return "" if match.group().startswith("//") else " "

    stripped = _COMMENT_RE.sub(replace, text)
    if "/*" in stripped:
        raise QasmError("unterminated block comment")
    return stripped


_KEYWORD_RE = re.compile(
    r"(openqasm|include|qreg|creg|gate|opaque|barrier|measure|reset|if)\b"
)


class QasmParser:
    """Stateful OpenQASM 2.0 parser producing a :class:`Circuit`."""

    def __init__(self) -> None:
        self._qregs: dict[str, _Register] = {}
        self._cregs: dict[str, _Register] = {}
        self._macros: dict[str, _GateMacro] = {}
        self._num_qubits = 0
        self._ops: list = []

    # -- public API ------------------------------------------------------

    def parse(self, text: str, name: str = "qasm") -> Circuit:
        """Parse OpenQASM source text into a circuit."""
        statements = self._split_statements(_strip_comments(text))
        for stmt in statements:
            self._handle_statement(stmt)
        if self._num_qubits == 0:
            raise QasmError("no qreg declared")
        circuit = Circuit(self._num_qubits, name=name)
        for op in self._ops:
            circuit.append(op)
        return circuit

    # -- statement splitting (handles gate-definition braces) -------------

    @staticmethod
    def _split_statements(text: str) -> list[str]:
        statements: list[str] = []
        depth = 0
        current: list[str] = []
        for ch in text:
            if ch == "{":
                depth += 1
                current.append(ch)
            elif ch == "}":
                depth -= 1
                if depth < 0:
                    raise QasmError("unbalanced '}'")
                current.append(ch)
                if depth == 0:
                    statements.append("".join(current).strip())
                    current = []
            elif ch == ";" and depth == 0:
                stmt = "".join(current).strip()
                if stmt:
                    statements.append(stmt)
                current = []
            else:
                current.append(ch)
        if depth != 0:
            raise QasmError("unbalanced '{'")
        tail = "".join(current).strip()
        if tail:
            raise QasmError(f"trailing input without ';': {tail!r}")
        return statements

    # -- statement dispatch ------------------------------------------------

    def _handle_statement(self, stmt: str) -> None:
        stmt = stmt.strip()
        if not stmt:
            return
        # Keywords match as whole words: any whitespace may follow
        # ("gate\tfoo ..." is legal QASM), and identifiers that merely
        # share a prefix with a keyword ("measurement", "ifoo") are
        # gate applications, not statements.
        match = _KEYWORD_RE.match(stmt.lower())
        keyword = match.group(1) if match else None
        if keyword in ("openqasm", "include", "opaque"):
            return
        if keyword in ("qreg", "creg"):
            self._declare_register(stmt, quantum=keyword == "qreg")
            return
        if keyword == "gate":
            self._define_macro(stmt)
            return
        if keyword == "barrier":
            self._apply_barrier(stmt)
            return
        if keyword == "measure":
            self._apply_measure(stmt)
            return
        if keyword == "reset":
            raise QasmError("reset is not supported by the NAQC model")
        if keyword == "if":
            raise QasmError("classical control flow is not supported")
        self._apply_gate_statement(stmt, env={})

    def _declare_register(self, stmt: str, quantum: bool) -> None:
        match = re.match(
            r"^[qc]reg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$", stmt
        )
        if match is None:
            raise QasmError(f"malformed register declaration: {stmt!r}")
        name, size = match.group(1), int(match.group(2))
        if size <= 0:
            raise QasmError(f"register {name!r} must have positive size")
        table = self._qregs if quantum else self._cregs
        if name in self._qregs or name in self._cregs:
            raise QasmError(f"register {name!r} redeclared")
        offset = self._num_qubits if quantum else sum(
            reg.size for reg in self._cregs.values()
        )
        table[name] = _Register(name, size, offset)
        if quantum:
            self._num_qubits += size

    # -- gate macros -------------------------------------------------------

    def _define_macro(self, stmt: str) -> None:
        match = re.match(
            r"^gate\s+([A-Za-z_][A-Za-z0-9_]*)"
            r"(?:\s*\(\s*([^)]*)\s*\))?"
            r"\s*([^{]*)\{(.*)\}$",
            stmt,
            flags=re.DOTALL,
        )
        if match is None:
            raise QasmError(f"malformed gate definition: {stmt!r}")
        name = match.group(1)
        if name in GATE_SPECS:
            # Standard-library re-definitions (as in qelib1.inc) are ignored:
            # the built-in semantics win.
            return
        params = [p.strip() for p in (match.group(2) or "").split(",") if p.strip()]
        qargs = [q.strip() for q in match.group(3).split(",") if q.strip()]
        body = [s.strip() for s in match.group(4).split(";") if s.strip()]
        self._macros[name] = _GateMacro(name, params, qargs, body)

    # -- applications ------------------------------------------------------

    def _apply_barrier(self, stmt: str) -> None:
        args = stmt[len("barrier"):].strip()
        if not args:
            self._ops.append(Barrier(()))
            return
        qubits: list[int] = []
        for arg in (a.strip() for a in args.split(",")):
            qubits.extend(self._resolve_qarg(arg))
        self._ops.append(Barrier(tuple(qubits)))

    def _apply_measure(self, stmt: str) -> None:
        match = re.match(r"^measure\s+(.+?)\s*->\s*(.+)$", stmt)
        if match is None:
            raise QasmError(f"malformed measure: {stmt!r}")
        qubits = self._resolve_qarg(match.group(1).strip())
        clbits = self._resolve_carg(match.group(2).strip())
        if len(qubits) != len(clbits):
            raise QasmError(f"measure width mismatch: {stmt!r}")
        for q, c in zip(qubits, clbits):
            self._ops.append(Measure(q, c))

    def _apply_gate_statement(self, stmt: str, env: dict[str, float]) -> None:
        match = _STATEMENT_RE.match(stmt)
        if match is None:
            raise QasmError(f"malformed statement: {stmt!r}")
        name = match.group("name").lower()
        raw_params = match.group("params")
        raw_args = match.group("args").strip()
        params: tuple[float, ...] = ()
        if raw_params is not None and raw_params.strip():
            params = tuple(
                evaluate_expression(p.strip(), env)
                for p in raw_params.split(",")
            )
        args = [a.strip() for a in raw_args.split(",") if a.strip()]
        if name in self._macros:
            self._expand_macro(self._macros[name], params, args)
            return
        if name not in GATE_SPECS:
            raise QasmError(f"unknown gate {name!r}")
        self._apply_builtin(name, params, args)

    def _apply_builtin(
        self, name: str, params: tuple[float, ...], args: list[str]
    ) -> None:
        spec = GATE_SPECS[name]
        if len(args) != spec.num_qubits:
            raise QasmError(
                f"gate {name!r} expects {spec.num_qubits} operands, got {len(args)}"
            )
        operand_lists = [self._resolve_qarg(arg) for arg in args]
        lengths = {len(ops) for ops in operand_lists if len(ops) > 1}
        if len(lengths) > 1:
            raise QasmError(f"mismatched broadcast widths for gate {name!r}")
        width = lengths.pop() if lengths else 1
        for i in range(width):
            qubits = tuple(
                ops[i] if len(ops) > 1 else ops[0] for ops in operand_lists
            )
            self._ops.append(Gate(name, qubits, params))

    def _expand_macro(
        self, macro: _GateMacro, params: tuple[float, ...], args: list[str]
    ) -> None:
        if len(params) != len(macro.params):
            raise QasmError(
                f"macro {macro.name!r} expects {len(macro.params)} params"
            )
        if len(args) != len(macro.qargs):
            raise QasmError(
                f"macro {macro.name!r} expects {len(macro.qargs)} operands"
            )
        env = dict(zip(macro.params, params))
        # Macro formal qubit args are single qubits; broadcast at the call.
        operand_lists = [self._resolve_qarg(arg) for arg in args]
        lengths = {len(ops) for ops in operand_lists if len(ops) > 1}
        if len(lengths) > 1:
            raise QasmError(f"mismatched broadcast widths for {macro.name!r}")
        width = lengths.pop() if lengths else 1
        for i in range(width):
            binding = {
                formal: (ops[i] if len(ops) > 1 else ops[0])
                for formal, ops in zip(macro.qargs, operand_lists)
            }
            for body_stmt in macro.body:
                self._apply_macro_body_statement(body_stmt, env, binding)

    def _apply_macro_body_statement(
        self, stmt: str, env: dict[str, float], binding: dict[str, int]
    ) -> None:
        match = _STATEMENT_RE.match(stmt)
        if match is None:
            raise QasmError(f"malformed macro body statement: {stmt!r}")
        name = match.group("name").lower()
        raw_params = match.group("params")
        params: tuple[float, ...] = ()
        if raw_params is not None and raw_params.strip():
            params = tuple(
                evaluate_expression(p.strip(), env)
                for p in raw_params.split(",")
            )
        formals = [a.strip() for a in match.group("args").split(",") if a.strip()]
        qubits: list[int] = []
        for formal in formals:
            if formal not in binding:
                raise QasmError(
                    f"macro body references unknown operand {formal!r}"
                )
            qubits.append(binding[formal])
        if name in self._macros:
            inner = self._macros[name]
            env_inner = dict(zip(inner.params, params))
            binding_inner = dict(zip(inner.qargs, qubits))
            for body_stmt in inner.body:
                self._apply_macro_body_statement(
                    body_stmt, env_inner, binding_inner
                )
            return
        if name == "barrier":
            self._ops.append(Barrier(tuple(qubits)))
            return
        if name not in GATE_SPECS:
            raise QasmError(f"unknown gate {name!r} in macro body")
        self._ops.append(Gate(name, tuple(qubits), params))

    # -- operand resolution --------------------------------------------------

    def _resolve_qarg(self, arg: str) -> list[int]:
        return self._resolve_arg(arg, self._qregs, "quantum")

    def _resolve_carg(self, arg: str) -> list[int]:
        return self._resolve_arg(arg, self._cregs, "classical")

    @staticmethod
    def _resolve_arg(
        arg: str, table: dict[str, _Register], kind: str
    ) -> list[int]:
        match = _ARG_RE.match(arg)
        if match is None:
            raise QasmError(f"malformed operand {arg!r}")
        reg_name = match.group("reg")
        if reg_name not in table:
            raise QasmError(f"unknown {kind} register {reg_name!r}")
        reg = table[reg_name]
        index = match.group("index")
        if index is None:
            return [reg.offset + i for i in range(reg.size)]
        idx = int(index)
        if not 0 <= idx < reg.size:
            raise QasmError(f"index {idx} out of range for {reg_name!r}")
        return [reg.offset + idx]


def parse_qasm(text: str, name: str = "qasm") -> Circuit:
    """Parse OpenQASM 2.0 source text into a :class:`Circuit`."""
    return QasmParser().parse(text, name=name)


def load_qasm(path: str, name: str | None = None) -> Circuit:
    """Parse an OpenQASM 2.0 file from ``path``."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return parse_qasm(text, name=name or path)


def to_qasm(circuit: Circuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for op in circuit.operations:
        if isinstance(op, Gate):
            if op.params:
                angles = ",".join(repr(p) for p in op.params)
                head = f"{op.name}({angles})"
            else:
                head = op.name
            operands = ",".join(f"q[{q}]" for q in op.qubits)
            lines.append(f"{head} {operands};")
        elif isinstance(op, Barrier):
            if op.qubits:
                operands = ",".join(f"q[{q}]" for q in op.qubits)
                lines.append(f"barrier {operands};")
            else:
                lines.append("barrier q;")
        elif isinstance(op, Measure):
            lines.append(f"measure q[{op.qubit}] -> c[{op.clbit}];")
    return "\n".join(lines) + "\n"


__all__ = [
    "QasmError",
    "QasmParser",
    "evaluate_expression",
    "load_qasm",
    "parse_qasm",
    "to_qasm",
]
