"""Command-line interface: ``python -m repro <command>``.

Commands:
    compile    Compile an OpenQASM 2.0 file for a zoned NA machine.
    bench      Run one Table 2 benchmark through all three scenarios.
    batch      Compile a JSON job manifest (parallel, cached, shardable).
    merge      Reassemble per-shard batch result files into one document.
    serve      Run the resident compilation service (persistent queue).
    coordinate Run the fleet coordinator: one front door over N
               daemons (cache-affinity routing, work stealing).
    loadgen    Drive a daemon or coordinator with synthetic traffic
               and report p50/p95/p99 submit-to-result latency.
    submit     Send a job manifest to a running service.
    status     Queue occupancy of a running service (per-job attempts,
               queue wait and span time for one submission).
    trace      Render one finished job's span timeline as a tree.
    results    Fetch / follow a submission's result records (NDJSON).
    shutdown   Stop a running service (draining by default;
               --fleet tears down a coordinator's daemons too).
    backends   List the registered compiler backends and their knobs.
    cache      Compiled-program cache maintenance and the cache server
               (info / prune against any --cache spec, serve).
    table2     Print the Table 2 reproduction.
    table3     Print a Table 3 reproduction over selected rows.
    fig7       Print the Fig. 7 multi-AOD series.
    scorecard  Evaluate the paper-vs-measured shape checks.
    verify     State-vector check: compiled schedule == circuit (<= 12q).
    profile    Structural workload characterisation of a QASM file.

The experiment commands (``bench``, ``table3``, ``fig7``, ``batch``)
route every compilation through the batch engine: ``--workers N`` fans
cache-missing jobs out over a process pool and ``--cache SPEC``
selects the compiled-program cache backend (``memory``,
``disk:PATH[:MAX_BYTES]``, ``remote:URL``,
``tiered:disk:PATH,remote:URL`` -- see ``docs/caching.md``;
``--cache-dir DIR`` remains shorthand for ``disk:DIR``).
``repro cache serve`` runs the shared HTTP cache server the
``remote:`` tier talks to.  Compilers resolve through the backend
registry: ``--backend`` selects variants by name (``repro backends``
lists them).

``batch`` additionally supports fail-soft sweeps
(``--on-error collect`` turns job failures into error records instead
of aborting the batch), per-job retry-with-backoff (``--retries N``),
streaming delivery (``--stream`` emits one NDJSON record per job on
stdout, in completion order), and deterministic sharding
(``--shard I/N`` compiles the ``I``-th of ``N`` round-robin manifest
slices; ``merge`` reassembles the shard outputs).

The service commands (``serve``, ``submit``, ``status``, ``results``,
``shutdown``) run the same workloads through a resident daemon with a
persistent job queue -- see ``docs/service.md``.  ``results --follow``
streams records identical in schema to ``batch --stream``.
``coordinate`` scales the service out: it fronts N daemons behind the
same protocol, routing each job to the daemon that rendezvous-hashing
its cache key picks (warm-cache affinity), spilling on load and
stealing work from stragglers; ``loadgen`` measures the
submit-to-result latency distribution of either topology.
Observability rides on the same protocol: ``serve --metrics
HOST:PORT`` adds a Prometheus ``GET /metrics`` listener, ``trace``
renders a finished job's recorded spans (queue wait, attempts,
per-pass compile times, cache-tier lookups) and ``loadgen --scrape
URL`` embeds ``/metrics`` samples in its report -- see
``docs/observability.md``.

Examples:
    python -m repro compile circuit.qasm --no-storage --trace
    python -m repro bench BV-14
    python -m repro bench BV-14 --backend enola --backend atomique
    python -m repro table3 --keys BV-14 VQE-30 --workers 4
    python -m repro fig7 --backend powermove-noreorder
    python -m repro batch manifest.json --workers 4 --cache-dir .cache
    python -m repro batch manifest.json --on-error collect --stream
    python -m repro batch manifest.json --retries 2 --backoff 0.5
    python -m repro batch manifest.json --shard 1/2 --output s1.json
    python -m repro merge s1.json s2.json --output results.json
    python -m repro cache serve .sharedcache --listen 127.0.0.1:8123
    python -m repro batch manifest.json \
        --cache tiered:disk:.cache,remote:http://127.0.0.1:8123
    python -m repro cache info --cache tiered:disk:.cache,remote:http://127.0.0.1:8123
    python -m repro cache prune --cache-dir .cache --max-bytes 50000000
    python -m repro serve queue/ --listen 127.0.0.1:7431 --workers 4
    python -m repro submit manifest.json --connect 127.0.0.1:7431
    python -m repro results s000001 --connect 127.0.0.1:7431 --follow
    python -m repro coordinate --listen 127.0.0.1:7500 \
        --daemon 127.0.0.1:7431 --daemon 127.0.0.1:7432
    python -m repro serve q2/ --listen 127.0.0.1:7432 \
        --announce 127.0.0.1:7500 --completed-ttl 3600
    python -m repro loadgen --connect 127.0.0.1:7500 \
        --clients 8 --rate 10 --duration 30 --output latency.json
    python -m repro shutdown --connect 127.0.0.1:7500 --fleet
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time

from .analysis import (
    figure7_series,
    render_table2,
    reproduce_table3,
    run_benchmark,
)
from .analysis.tables import Table3Row
from .analysis.visualize import program_trace
from .baselines import EnolaConfig
from .benchsuite import SUITE, get_benchmark
from .circuits import load_qasm
from .core import PowerMoveCompiler, PowerMoveConfig
from .engine import (
    BATCH_RESULTS_FORMAT,
    BATCH_RESULTS_VERSION,
    CacheSpecError,
    CompilationEngine,
    DiskCache,
    EngineError,
    ManifestError,
    MemoryCache,
    RemoteCacheError,
    RemoteCacheServer,
    ShardError,
    ShardPlan,
    describe_cache,
    job_record,
    make_cache,
    manifest_cache_spec,
    manifest_digest,
    merge_result_docs,
    parse_manifest,
    read_manifest,
    results_doc,
    results_doc_from_records,
)
from .fidelity import evaluate_program
from .schedule import validate_program
from .schedule.serialize import dump_program

__all__ = ["BATCH_RESULTS_FORMAT", "BATCH_RESULTS_VERSION", "main"]


def _resolve_cache(
    args: argparse.Namespace,
    manifest_doc=None,
    default=None,
):
    """Cache from ``--cache`` / ``--cache-dir`` / the manifest.

    Precedence: the explicit ``--cache`` spec, then ``--cache-dir``
    (shorthand for ``disk:DIR``), then the manifest's top-level
    ``"cache"`` key, then ``default``.  A malformed spec exits 2 (the
    same contract as argparse's own option errors).
    """
    try:
        if getattr(args, "cache", None):
            return make_cache(args.cache)
        if getattr(args, "cache_dir", None):
            return DiskCache(args.cache_dir)
        if manifest_doc is not None:
            spec = manifest_cache_spec(manifest_doc)
            if spec:
                return make_cache(spec)
    except CacheSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    return default


def _make_engine(
    args: argparse.Namespace, progress=None
) -> CompilationEngine:
    """Engine from the shared --workers / --cache CLI options."""
    return CompilationEngine(
        cache=_resolve_cache(args),
        workers=args.workers,
        progress=progress,
        retries=getattr(args, "retries", 0),
        backoff=getattr(args, "backoff", 0.1),
    )


def _emit_ndjson(record) -> None:
    """Print one NDJSON record, flushed.

    Per-record flushing is what makes ``batch --stream`` and
    ``results --follow`` consumable live through ``head`` / ``jq`` --
    a block-buffered pipe would sit on finished results until 4 kB
    accumulate.
    """
    sys.stdout.write(json.dumps(record, separators=(",", ":")) + "\n")
    sys.stdout.flush()


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _cache_dir_path(text: str) -> str:
    if os.path.exists(text) and not os.path.isdir(text):
        raise argparse.ArgumentTypeError(
            f"{text!r} exists and is not a directory"
        )
    return text


def _add_cache_options(
    parser: argparse.ArgumentParser, required: bool = False
) -> None:
    """The mutually-exclusive --cache / --cache-dir pair."""
    group = parser.add_mutually_exclusive_group(required=required)
    group.add_argument(
        "--cache",
        default=None,
        metavar="SPEC",
        help="compiled-program cache spec: memory, "
        "disk:PATH[:MAX_BYTES], remote:URL, or "
        "tiered:SPEC,SPEC,... (see docs/caching.md)",
    )
    group.add_argument(
        "--cache-dir",
        type=_cache_dir_path,
        default=None,
        help="directory for the on-disk compiled-program cache "
        "(shorthand for --cache disk:DIR)",
    )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="process-pool width for parallel compilation (default 1)",
    )
    _add_cache_options(parser)
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts granted to a failing job before its "
        "failure is surfaced (default 0)",
    )
    parser.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        help="base seconds between attempts, doubling per retry "
        "(default 0.1)",
    )


def _cmd_compile(args: argparse.Namespace) -> int:
    circuit = load_qasm(args.file)
    config = PowerMoveConfig(
        use_storage=args.storage,
        num_aods=args.aods,
        seed=args.seed,
    )
    result = PowerMoveCompiler(config).compile(circuit)
    validate_program(result.program, source_circuit=result.native_circuit)
    report = evaluate_program(result.program)
    print(f"compiled {args.file!r} with {result.program.compiler_name}")
    print(f"  qubits          : {circuit.num_qubits}")
    print(f"  rydberg stages  : {result.program.num_stages}")
    print(f"  coll-moves      : {result.program.num_coll_moves}")
    print(f"  transfers       : {result.program.num_transfers}")
    print(f"  T_exe           : {report.execution_time_us:.1f} us")
    print(f"  T_comp          : {result.compile_time * 1e3:.2f} ms")
    print(f"  fidelity        : {report.total:.6g}")
    for name, value in report.infidelity_breakdown().items():
        print(f"    1-f[{name:12s}]: {value:.6g}")
    if args.output:
        dump_program(result.program, args.output)
        print(f"  wrote program   : {args.output}")
    if args.trace:
        print()
        print(program_trace(result.program, max_instructions=args.trace))
    return 0


def _cmd_bench_scaling(args: argparse.Namespace) -> int:
    from .benchsuite.scaling import (
        SCALING_BACKENDS,
        SCALING_SIZES,
        run_scaling,
        scaling_doc,
    )

    sizes = (
        tuple(int(s) for s in args.sizes.split(","))
        if args.sizes
        else SCALING_SIZES
    )
    backends = tuple(args.backend) if args.backend else SCALING_BACKENDS

    def progress(point) -> None:
        slowest = max(
            point.pass_timings.items(),
            key=lambda item: item[1],
            default=("-", 0.0),
        )
        print(
            f"  {point.backend:24s} N={point.num_qubits:<6d} "
            f"T_comp={point.compile_s:8.3f}s  "
            f"(slowest pass: {slowest[0]} {slowest[1]:.3f}s)",
            flush=True,
        )

    print(
        "scaling ladder: random 3-regular QAOA, "
        f"sizes={list(sizes)}, backends={list(backends)}"
    )
    points = run_scaling(sizes=sizes, backends=backends,
                         seed=args.seed, progress=progress,
                         arch=args.arch)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(scaling_doc(points), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.scaling:
        return _cmd_bench_scaling(args)
    if args.key is None:
        print(
            "error: a benchmark key is required unless --scaling is given",
            file=sys.stderr,
        )
        return 2
    spec = get_benchmark(args.key)
    enola_cfg = EnolaConfig(
        seed=args.seed,
        mis_restarts=args.mis_restarts,
        sa_iterations_per_qubit=args.sa_iterations,
        num_aods=args.aods,
    )
    from .engine import SCENARIOS

    result = run_benchmark(
        spec,
        num_aods=args.aods,
        seed=args.seed,
        enola_config=enola_cfg,
        engine=_make_engine(args),
        scenarios=tuple(args.backend) if args.backend else SCENARIOS,
        arch=args.arch,
    )
    if args.backend:
        print(f"benchmark {args.key} ({spec.num_qubits} qubits)")
        for key in args.backend:
            scenario = result[key]
            print(
                f"  {key:24s} fid={scenario.fidelity.total:<10.4g} "
                f"T_exe={scenario.execution_time_us:<10.0f} "
                f"T_comp={scenario.compile_time:.4f}s"
            )
        return 0
    row = Table3Row.from_result(result)
    print(f"benchmark {args.key} ({spec.num_qubits} qubits)")
    print(
        f"  fidelity   enola={row.enola_fidelity:.4g}  "
        f"ns={row.ns_fidelity:.4g}  ws={row.ws_fidelity:.4g}  "
        f"improv={row.fidelity_improvement:.3g}x"
    )
    print(
        f"  T_exe (us) enola={row.enola_texe_us:.0f}  "
        f"ns={row.ns_texe_us:.0f}  ws={row.ws_texe_us:.0f}  "
        f"improv={row.texe_improvement:.2f}x"
    )
    print(
        f"  T_comp (s) enola={row.enola_tcomp_s:.4f}  "
        f"ours={row.pm_tcomp_s:.4f}  improv={row.tcomp_improvement:.2f}x"
    )
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    print(render_table2())
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    keys = tuple(args.keys) if args.keys else None
    if keys:
        for key in keys:
            get_benchmark(key)  # validate early
    enola_cfg = EnolaConfig(
        seed=args.seed,
        mis_restarts=args.mis_restarts,
        sa_iterations_per_qubit=args.sa_iterations,
    )
    table = reproduce_table3(
        keys=keys,
        seed=args.seed,
        enola_config=enola_cfg,
        engine=_make_engine(args),
        backend=args.backend,
        arch=args.arch,
    )
    print(table.render())
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from .pipeline import REGISTRY

    if args.json:
        doc = [
            {
                "name": spec.name,
                "description": spec.description,
                "config": spec.config_cls.__name__,
                "config_knobs": {
                    name: repr(value)
                    for name, value in spec.config_knobs.items()
                },
                "passes": list(spec.pipeline.pass_names),
                "preserves_gate_stream": spec.preserves_gate_stream,
                "strategies": dict(spec.strategies or {}),
                "strategy_axes": dict(spec.strategy_axes or {}),
            }
            for spec in REGISTRY
        ]
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    for spec in REGISTRY:
        print(f"{spec.name}")
        print(f"  {spec.description}")
        knobs = ", ".join(
            f"{name}={value!r}" for name, value in spec.config_knobs.items()
        )
        print(f"  config {spec.config_cls.__name__}: {knobs}")
        print(f"  passes: {' -> '.join(spec.pipeline.pass_names)}")
        if spec.strategy_axes:
            axes = ", ".join(
                f"{axis}={name}"
                for axis, name in sorted(spec.strategy_axes.items())
            )
            print(f"  strategies: {axes}")
    return 0


def _cmd_architectures(args: argparse.Namespace) -> int:
    from .hardware.catalog import ARCHITECTURES
    from .hardware.params import DEFAULT_PARAMS

    # Catalog entries are factories; size each at a reference workload so
    # the listing shows a concrete floor plan.
    example_qubits = args.qubits
    if args.json:
        doc = []
        for spec in ARCHITECTURES:
            machine = spec.build(example_qubits, 1, DEFAULT_PARAMS)
            doc.append(
                {
                    "name": spec.name,
                    "description": spec.description,
                    "example_qubits": example_qubits,
                    "compute_shape": list(machine.compute_shape),
                    "storage_shape": list(machine.storage_shape),
                    "has_storage": machine.has_storage,
                    "num_aods": machine.num_aods,
                    "num_sites": machine.num_sites,
                }
            )
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    for spec in ARCHITECTURES:
        machine = spec.build(example_qubits, 1, DEFAULT_PARAMS)
        ccols, crows = machine.compute_shape
        scols, srows = machine.storage_shape
        storage = f"{scols}x{srows}" if machine.has_storage else "none"
        print(f"{spec.name}")
        print(f"  {spec.description}")
        print(
            f"  at {example_qubits} qubits: compute {ccols}x{crows}, "
            f"storage {storage}, AODs {machine.num_aods}, "
            f"{machine.num_sites} sites"
        )
    return 0


def _cache_target(args: argparse.Namespace):
    """The cache named by ``--cache`` / ``--cache-dir`` (required)."""
    cache = _resolve_cache(args)
    if cache is None:  # argparse enforces the group; belt and braces
        print("error: give --cache SPEC or --cache-dir DIR",
              file=sys.stderr)
        raise SystemExit(2)
    return cache


def _render_cache_info(info: dict, indent: str = "") -> None:
    """Print one cache's (or tier's) occupancy line(s)."""
    if info.get("kind") == "tiered":
        print(
            f"{indent}tiered cache "
            f"(write-{info.get('write_policy', 'through')}):"
        )
        for tier in info.get("tiers", []):
            _render_cache_info(tier, indent + "  ")
        return
    name = info.get("name", info.get("kind", "cache"))
    where = info.get("directory") or info.get("url") or ""
    parts = []
    if info.get("entries") is not None:
        parts.append(f"{info['entries']} entries")
    if info.get("total_bytes") is not None:
        parts.append(f"{info['total_bytes']} bytes")
    if info.get("max_bytes"):
        parts.append(f"budget {info['max_bytes']} bytes")
    if info.get("reachable") is False:
        parts.append("UNREACHABLE")
    body = ", ".join(parts) if parts else "no occupancy data"
    suffix = f" ({where})" if where else ""
    print(f"{indent}{name}{suffix}: {body}")


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    cache = _cache_target(args)
    try:
        report = cache.prune(args.max_bytes)
    except RemoteCacheError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"pruned {describe_cache(cache)}: removed "
        f"{report.removed_entries} entries "
        f"({report.removed_bytes} bytes), "
        f"{report.remaining_entries} entries "
        f"({report.remaining_bytes} bytes) remain"
    )
    return 0


def _cmd_cache_info(args: argparse.Namespace) -> int:
    cache = _cache_target(args)
    if args.json:
        print(json.dumps(cache.info(), indent=1))
    else:
        _render_cache_info(cache.info())
    return 0


def _cmd_cache_serve(args: argparse.Namespace) -> int:
    from .service.protocol import ProtocolError, parse_address

    try:
        kind, value = parse_address(args.listen)
    except ProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if kind != "tcp":
        print(
            "error: the cache server listens on TCP only "
            "(host:port)",
            file=sys.stderr,
        )
        return 2
    host, port = value
    store = DiskCache(args.directory, max_bytes=args.max_bytes)
    server = RemoteCacheServer(store, host=host, port=port)
    print(
        f"repro cache server listening on {server.url} "
        f"(directory {args.directory}"
        + (
            f", budget {args.max_bytes} bytes)"
            if args.max_bytes
            else ")"
        ),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print(
            "repro cache server: interrupt -- stopping "
            "(entries stay on disk)",
            file=sys.stderr,
        )
    finally:
        server.stop()
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        manifest_doc = read_manifest(args.manifest)
        if args.arch is not None:
            # Fold the override into the manifest document itself (not
            # just the parsed jobs) so manifest_digest -- and therefore
            # shard-merge compatibility checks -- see the same work.
            manifest_doc.setdefault("defaults", {})["arch"] = args.arch
        jobs = parse_manifest(manifest_doc)
    except ManifestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    shard = None
    if args.shard:
        try:
            shard = ShardPlan.parse(args.shard)
        except ShardError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        pairs = shard.select(jobs)
        if not pairs:
            # Manifest smaller than the shard count: still a valid
            # (empty) shard, so fixed N-lane automation works on any
            # manifest size; merge coverage comes from the other shards.
            print(
                f"note: shard {shard.spec} selects none of the "
                f"{len(jobs)} manifest jobs; writing an empty shard "
                "document",
                file=sys.stderr,
            )
    else:
        pairs = list(enumerate(jobs))
    global_indices = [index for index, _ in pairs]
    run_jobs = [job for _, job in pairs]

    progress = None
    if args.progress:
        finished = [0]

        def progress(event):
            finished[0] += 1
            status = (
                "fail"
                if event.failed
                else "hit " if event.cache_hit else "comp"
            )
            print(
                f"  [{finished[0]}/{event.total}] {status} "
                f"{event.job.label} ({event.compile_time * 1e3:.1f} ms)",
                file=sys.stderr,
            )

    cache = _resolve_cache(
        args, manifest_doc=manifest_doc, default=None
    )
    if cache is None:
        cache = MemoryCache()
    engine = CompilationEngine(
        cache=cache,
        workers=args.workers,
        progress=progress,
        on_error=args.on_error,
        retries=args.retries,
        backoff=args.backoff,
    )
    start = time.perf_counter()
    results = []
    try:
        if args.stream:
            for result in engine.stream(run_jobs):
                record = job_record(
                    result, global_indices[result.index]
                )
                _emit_ndjson(record)
                results.append(result)
        else:
            results = engine.run(run_jobs)
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # Push write-back-deferred entries to the backing tier before the
    # run ends (no-op for every non-write-back cache).
    cache.flush()
    wall_time = time.perf_counter() - start

    doc = results_doc(
        results,
        manifest_digest=manifest_digest(manifest_doc),
        total_jobs=len(jobs),
        wall_time_s=wall_time,
        on_error=args.on_error,
        shard=shard,
        global_indices=global_indices,
        cache_stats=cache.stats_doc(),
    )
    summary = (
        f"batch: {doc['num_jobs']} jobs, {doc['cache_hits']} cache "
        f"hits, {doc['cache_misses']} compiled in {wall_time:.2f}s"
    )
    if doc["num_failed"]:
        summary += f", {doc['num_failed']} failed"
    if shard is not None:
        summary += f" (shard {shard.spec} of {doc['total_jobs']} jobs)"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=1)
        print(
            f"{summary} -> {args.output}",
            file=sys.stderr if args.stream else sys.stdout,
        )
    elif not args.stream:
        print(json.dumps(doc, indent=1))
    else:
        print(summary, file=sys.stderr)
    return 1 if doc["num_failed"] else 0


def _cmd_merge(args: argparse.Namespace) -> int:
    docs = []
    for path in args.results:
        try:
            with open(path, encoding="utf-8") as handle:
                docs.append(json.load(handle))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    try:
        merged = merge_result_docs(docs)
    except ShardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=1)
        print(
            f"merged {len(docs)} result files "
            f"({merged['num_jobs']} jobs, {merged['num_failed']} "
            f"failed) -> {args.output}"
        )
    else:
        print(json.dumps(merged, indent=1))
    # Mirror `batch`: a merged document carrying failed jobs is an
    # incomplete sweep, and automation gating on the merge should see
    # that.
    return 1 if merged["num_failed"] else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import socket as _socket

    from .service import ServiceServer

    listen = args.listen
    if listen is None:
        # Self-contained default: a socket inside the queue directory
        # (TCP loopback where AF_UNIX is unavailable).
        listen = (
            os.path.join(args.queue_dir, "service.sock")
            if hasattr(_socket, "AF_UNIX")
            else "127.0.0.1:0"
        )
    try:
        server = ServiceServer(
            args.queue_dir,
            listen,
            cache=args.cache,
            cache_dir=args.cache_dir,
            workers=args.workers,
            retries=args.retries,
            backoff=args.backoff,
            lease_seconds=args.lease,
            completed_ttl=args.completed_ttl,
            announce=args.announce,
            metrics_address=args.metrics,
            tenants=args.tenants,
        )
    except (CacheSpecError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if server.tenants is not None and hasattr(signal, "SIGHUP"):
        # kill -HUP <daemon> reloads the tenants file immediately
        # (token rotation without a restart); the maintenance sweep
        # also picks up mtime changes on its own.
        def _reload_tenants(signum, frame):  # noqa: ARG001
            if server.tenants.reload():
                print(
                    f"repro service: tenants file "
                    f"{server.tenants.path} reloaded (SIGHUP)",
                    flush=True,
                )
            else:
                print(
                    "repro service: SIGHUP tenants reload failed; "
                    "keeping the previous table",
                    file=sys.stderr,
                    flush=True,
                )

        signal.signal(signal.SIGHUP, _reload_tenants)
    server.start()
    announce_note = (
        f", announcing to {args.announce}" if args.announce else ""
    )
    metrics_note = (
        f", metrics at {server.metrics_url}" if server.metrics_url else ""
    )
    tenants_note = (
        f", tenants {args.tenants} "
        f"({len(server.tenants.tenants())} tenant(s))"
        if server.tenants is not None
        else ""
    )
    print(
        f"repro service listening on {server.address} "
        f"(queue {args.queue_dir}, {args.workers} workers, "
        f"retries {args.retries}, "
        f"cache {describe_cache(server.cache)}"
        f"{announce_note}{metrics_note}{tenants_note})",
        flush=True,
    )
    try:
        while not server.wait_stopped(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print(
            "repro service: interrupt -- stopping (queued jobs stay "
            "on disk)",
            file=sys.stderr,
        )
        server.stop(drain=False)
    return 0


def _resolve_token(args: argparse.Namespace) -> str | None:
    """``--token`` wins; the ``REPRO_TOKEN`` env var is the fallback
    on every service-facing command."""
    token = getattr(args, "token", None)
    if token:
        return token
    return os.environ.get("REPRO_TOKEN") or None


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(args.connect, token=_resolve_token(args))


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceError

    try:
        manifest_doc = read_manifest(args.manifest)
    except ManifestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = _service_client(args)
    try:
        reply = client.submit(manifest_doc, priority=args.priority)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply.raw, indent=1))
    else:
        print(
            f"submitted {reply['submission']}: "
            f"{reply['total_jobs']} jobs "
            f"(manifest {reply['manifest_digest'][:16]})"
        )
        print(
            f"  follow with: repro results {reply['submission']} "
            f"--connect {args.connect} --follow"
        )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        reply = client.status(args.submission)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply.raw, indent=1))
        return 0
    counts = reply["counts"]
    line = ", ".join(f"{counts[state]} {state}" for state in counts)
    if args.submission:
        print(
            f"{args.submission}: {line} "
            f"(of {reply['total_jobs']} jobs)"
        )
        for job in reply.get("jobs", []):
            attempts = job.get("attempts")
            wait_s = job.get("queue_wait_s")
            span_s = job.get("span_time_s")
            detail = ", ".join(
                part
                for part in (
                    f"attempts {attempts}" if attempts else None,
                    f"waited {wait_s:.3f}s" if wait_s is not None else None,
                    f"spans {span_s:.3f}s" if span_s is not None else None,
                )
                if part
            )
            print(
                f"  {job['id']}: {job['status']}"
                + (f" ({detail})" if detail else "")
            )
    else:
        print(f"queue: {line}")
        for sub in reply["submissions"]:
            sub_counts = sub["counts"]
            done = sub_counts["done"] + sub_counts["error"]
            print(
                f"  {sub['id']}: {done}/{sub['total_jobs']} finished "
                f"({sub_counts['error']} failed)"
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.trace import render_trace_tree
    from .service import ServiceError

    client = _service_client(args)
    try:
        reply = client.trace(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply["trace"], indent=1))
    else:
        print(render_trace_tree(reply["trace"]))
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _service_client(args)
    records = []
    failed = 0
    try:
        for record in client.results(
            args.submission, follow=args.follow
        ):
            _emit_ndjson(record)
            records.append(record)
            if record.get("status") == "error":
                failed += 1
        start = client.last_start or {}
        summary = client.last_summary or {}
        remaining = summary.get("remaining", 0)
        if args.output:
            if remaining:
                print(
                    f"error: {remaining} job(s) still unfinished; "
                    "re-run with --follow to wait for them",
                    file=sys.stderr,
                )
                return 2
            # The records just streamed ARE the document body; no
            # second round trip to the daemon.
            doc = results_doc_from_records(
                records,
                manifest_digest=start.get("manifest_digest", ""),
                total_jobs=start.get("total_jobs", len(records)),
                wall_time_s=summary.get("wall_time_s", 0.0),
                on_error="collect",
            )
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=1)
            print(
                f"wrote results document -> {args.output}",
                file=sys.stderr,
            )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"results {args.submission}: {summary.get('num_done', 0)} "
        f"finished, {failed} failed, {remaining} remaining",
        file=sys.stderr,
    )
    if failed:
        return 1
    # A partial stream (daemon stopped mid-run, or no --follow on an
    # unfinished submission) must not read as success to pipelines.
    return 2 if remaining else 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        client.shutdown(drain=not args.now, fleet=args.fleet)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        "shutdown requested"
        + (" (immediate)" if args.now else " (draining the queue first)")
        + (" (whole fleet)" if args.fleet else "")
    )
    return 0


def _cmd_coordinate(args: argparse.Namespace) -> int:
    from .service import Coordinator

    try:
        coordinator = Coordinator(
            args.listen,
            daemons=tuple(args.daemon or ()),
            spill_depth=args.spill_depth,
            poll_interval=args.poll,
            steal_batch=args.steal_batch,
            tenants=args.tenants,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if coordinator.tenants is not None and hasattr(signal, "SIGHUP"):
        # Same token-rotation path as ``repro serve``: kill -HUP
        # reloads the tenants file without dropping the fleet.
        def _reload_tenants(signum, frame):  # noqa: ARG001
            if coordinator.tenants.reload():
                print(
                    f"repro coordinator: tenants file "
                    f"{coordinator.tenants.path} reloaded (SIGHUP)",
                    flush=True,
                )
            else:
                print(
                    "repro coordinator: SIGHUP tenants reload failed; "
                    "keeping the previous table",
                    file=sys.stderr,
                    flush=True,
                )

        signal.signal(signal.SIGHUP, _reload_tenants)
    coordinator.start()
    tenants_note = (
        f", tenants {args.tenants}" if args.tenants else ""
    )
    print(
        f"repro coordinator listening on {coordinator.address} "
        f"({len(args.daemon or ())} static daemon(s), "
        f"spill depth {args.spill_depth}, "
        f"steal batch {args.steal_batch}{tenants_note})",
        flush=True,
    )
    try:
        while not coordinator.wait_stopped(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print(
            "repro coordinator: interrupt -- stopping (daemon queues "
            "keep their work)",
            file=sys.stderr,
        )
        coordinator.stop(drain=False)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .service import ServiceError
    from .service.loadgen import run_loadgen

    progress = None
    if args.progress:

        def progress(count: int, latency: float) -> None:
            print(
                f"  [{count}] {latency * 1e3:.0f} ms",
                file=sys.stderr,
                flush=True,
            )

    try:
        report = run_loadgen(
            args.connect,
            clients=args.clients,
            rate_hz=args.rate,
            duration_s=args.duration,
            benchmarks=tuple(args.benchmark or ["BV-14"]),
            backend=args.backend,
            distinct_seeds=args.distinct,
            seed=args.seed,
            progress=progress,
            scrape_url=args.scrape,
            token=_resolve_token(args),
        )
    except (ServiceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1)
        print(f"wrote loadgen report -> {args.output}", file=sys.stderr)
    else:
        print(json.dumps(report, indent=1))
    latency = report["latency_s"]
    print(
        f"loadgen: {report['completed']}/{report['submitted']} "
        f"completed, {report['failed']} failed, "
        f"{report['num_errors']} errors | latency "
        f"p50 {latency['p50'] * 1e3:.0f} ms, "
        f"p95 {latency['p95'] * 1e3:.0f} ms, "
        f"p99 {latency['p99'] * 1e3:.0f} ms "
        f"({report['throughput_jobs_per_s']:.1f} jobs/s)",
        file=sys.stderr,
    )
    ok = (
        report["completed"] > 0
        and report["failed"] == 0
        and report["num_errors"] == 0
    )
    return 0 if ok else 1


def _cmd_tenants(args: argparse.Namespace) -> int:
    from .service.tenancy import (
        TenancyError,
        TenantRegistry,
        quota_table,
    )

    try:
        registry = TenantRegistry.load(args.file)
    except (OSError, TenancyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tenants = registry.tenants()
    fleet_note = (
        "fleet token configured"
        if registry.has_fleet_token()
        else "no fleet token (single-daemon use only)"
    )
    print(
        f"{args.file}: ok -- {len(tenants)} tenant(s), {fleet_note}"
    )
    print(quota_table(tenants.values()))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .circuits import transpile_to_native
    from .verify import verify_program_semantics

    circuit = load_qasm(args.file)
    config = PowerMoveConfig(
        use_storage=args.storage, num_aods=args.aods, seed=args.seed
    )
    result = PowerMoveCompiler(config).compile(circuit)
    validate_program(result.program, source_circuit=result.native_circuit)
    overlap = verify_program_semantics(
        result.program, transpile_to_native(circuit), seed=args.seed
    )
    print(
        f"verified {args.file!r}: structural checks pass, "
        f"state-vector overlap {overlap:.12f}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .analysis.workloads import profile_circuit, render_profiles

    profile = profile_circuit(load_qasm(args.file))
    print(render_profiles([profile]))
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from .analysis.scorecard import run_scorecard

    keys = tuple(args.keys) if args.keys else None
    enola_cfg = EnolaConfig(
        seed=args.seed,
        mis_restarts=args.mis_restarts,
        sa_iterations_per_qubit=args.sa_iterations,
    )
    card = run_scorecard(keys=keys, seed=args.seed, enola_config=enola_cfg)
    print(card.render())
    return 0 if card.score >= args.min_score else 1


def _cmd_fig7(args: argparse.Namespace) -> int:
    keys = tuple(args.keys) if args.keys else ("BV-14", "QSIM-rand-0.3-10")
    series = figure7_series(
        keys=keys,
        aod_counts=tuple(args.aod_counts),
        seed=args.seed,
        engine=_make_engine(args),
        backend=args.backend,
        arch=args.arch,
    )
    print(series.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile an OpenQASM 2.0 file"
    )
    p_compile.add_argument("file", help="path to the .qasm file")
    p_compile.add_argument(
        "--no-storage",
        dest="storage",
        action="store_false",
        help="disable the storage zone (non-storage scenario)",
    )
    p_compile.add_argument("--aods", type=int, default=1)
    p_compile.add_argument("--seed", type=int, default=0)
    p_compile.add_argument(
        "--output", help="write the compiled program as JSON"
    )
    p_compile.add_argument(
        "--trace",
        type=int,
        nargs="?",
        const=40,
        default=None,
        help="print an instruction trace (optionally: max instructions)",
    )
    p_compile.set_defaults(func=_cmd_compile, storage=True)

    p_bench = sub.add_parser(
        "bench", help="run one Table 2 benchmark, all scenarios"
    )
    p_bench.add_argument(
        "key",
        nargs="?",
        default=None,
        help=f"one of: {', '.join(SUITE)} (omit with --scaling)",
    )
    p_bench.add_argument(
        "--scaling",
        action="store_true",
        help="run the compile-time scaling ladder (random 3-regular "
        "QAOA over --sizes) instead of one Table 2 benchmark",
    )
    p_bench.add_argument(
        "--sizes",
        default=None,
        metavar="N,N,...",
        help="comma-separated ladder sizes (default: 64,256,1024,4096,"
        "10000; only with --scaling)",
    )
    p_bench.add_argument(
        "--output",
        default=None,
        help="write the ladder timings as compare_bench-format JSON "
        "(only with --scaling)",
    )
    p_bench.add_argument("--aods", type=int, default=1)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--arch",
        default=None,
        metavar="NAME",
        help="architecture-catalog entry to compile onto (see "
        "'repro architectures'; applies to --scaling rungs too)",
    )
    p_bench.add_argument("--mis-restarts", type=int, default=5)
    p_bench.add_argument("--sa-iterations", type=int, default=150)
    p_bench.add_argument(
        "--backend",
        action="append",
        default=None,
        metavar="NAME",
        help="registry backend to run (repeatable; replaces the default "
        "enola / non-storage / with-storage trio)",
    )
    _add_engine_options(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_batch = sub.add_parser(
        "batch", help="compile a JSON job manifest (parallel, cached)"
    )
    p_batch.add_argument("manifest", help="path to the job manifest JSON")
    p_batch.add_argument(
        "--output",
        help="write the results JSON here (default: print to stdout)",
    )
    p_batch.add_argument(
        "--progress",
        action="store_true",
        help="stream per-job progress lines to stderr",
    )
    p_batch.add_argument(
        "--stream",
        action="store_true",
        help="emit one NDJSON result record per job on stdout, in "
        "completion order (suppresses the final document unless "
        "--output is given)",
    )
    p_batch.add_argument(
        "--on-error",
        choices=["raise", "collect"],
        default="raise",
        help="failure policy: 'raise' aborts on the first failing job "
        "(cancelling pending work), 'collect' records it and finishes "
        "the rest (default: raise)",
    )
    p_batch.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="compile only the I-th of N deterministic round-robin "
        "manifest slices (1-based); combine the outputs with "
        "'repro merge'",
    )
    p_batch.add_argument(
        "--arch",
        default=None,
        metavar="NAME",
        help="architecture-catalog default folded into the manifest's "
        "defaults block (per-job 'arch' entries still win); affects "
        "the manifest digest, so give every shard the same value",
    )
    _add_engine_options(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_merge = sub.add_parser(
        "merge",
        help="reassemble per-shard batch result files into one document",
    )
    p_merge.add_argument(
        "results",
        nargs="+",
        help="the per-shard result JSON files (every shard exactly once)",
    )
    p_merge.add_argument(
        "--output",
        help="write the merged JSON here (default: print to stdout)",
    )
    p_merge.set_defaults(func=_cmd_merge)

    p_serve = sub.add_parser(
        "serve", help="run the resident compilation service"
    )
    p_serve.add_argument(
        "queue_dir",
        type=_cache_dir_path,
        help="persistent job-queue directory (reusing one resumes its "
        "unfinished work)",
    )
    p_serve.add_argument(
        "--listen",
        default=None,
        metavar="ADDR",
        help="listen address: host:port or a unix socket path "
        "(default: <queue-dir>/service.sock)",
    )
    _add_cache_options(p_serve)
    p_serve.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="leased worker threads executing jobs (default 2)",
    )
    p_serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="per-job extra attempts before a failure is recorded "
        "(default 1)",
    )
    p_serve.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        help="base seconds between attempts, doubling per retry "
        "(default 0.1)",
    )
    p_serve.add_argument(
        "--lease",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="worker lease duration; expired leases requeue the job "
        "(default 300)",
    )
    p_serve.add_argument(
        "--completed-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="garbage-collect submissions whose every job finished "
        "more than this many seconds ago (default: keep forever; "
        "live or leased jobs are never collected)",
    )
    p_serve.add_argument(
        "--announce",
        default=None,
        metavar="ADDR",
        help="self-register with a fleet coordinator at this address "
        "(re-announced periodically, so a restarted coordinator "
        "re-learns this daemon)",
    )
    p_serve.add_argument(
        "--metrics",
        default=None,
        metavar="LISTEN",
        help="serve the Prometheus exposition on an HTTP listener at "
        "GET /metrics (HOST:PORT, :PORT or a bare port; default: off)",
    )
    p_serve.add_argument(
        "--tenants",
        default=None,
        metavar="FILE",
        help="tenants file (JSON/TOML) enabling token auth, "
        "per-tenant namespaces, quotas and submit rate limits; hot "
        "reloaded on SIGHUP or when the file's mtime changes "
        "(default: open v1-compatible daemon)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_coordinate = sub.add_parser(
        "coordinate",
        help="run the fleet coordinator (front door over N daemons)",
    )
    p_coordinate.add_argument(
        "--listen",
        default="127.0.0.1:7500",
        metavar="ADDR",
        help="listen address: host:port or a unix socket path "
        "(default 127.0.0.1:7500)",
    )
    p_coordinate.add_argument(
        "--daemon",
        action="append",
        default=None,
        metavar="ADDR",
        help="address of a compilation daemon (repeatable); daemons "
        "can also self-register via 'repro serve --announce'",
    )
    p_coordinate.add_argument(
        "--spill-depth",
        type=_positive_int,
        default=16,
        metavar="N",
        help="queue depth at which affinity placement spills to the "
        "next rendezvous choice (default 16)",
    )
    p_coordinate.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="fleet poll interval: liveness checks and the "
        "work-steal scan (default 0.5)",
    )
    p_coordinate.add_argument(
        "--steal-batch",
        type=int,
        default=2,
        metavar="N",
        help="jobs moved per steal from a straggling daemon to an "
        "idle one (0 disables stealing; default 2)",
    )
    p_coordinate.add_argument(
        "--tenants",
        default=None,
        metavar="FILE",
        help="tenants file (JSON/TOML); the coordinator enforces "
        "auth/quotas/rate limits at the front door and passes work to "
        "its daemons with the file's fleet_token",
    )
    p_coordinate.set_defaults(func=_cmd_coordinate)

    p_tenants = sub.add_parser(
        "tenants",
        help="validate a tenants file offline and print its quota table",
    )
    p_tenants.add_argument(
        "file", help="path to the tenants file (JSON or TOML)"
    )
    p_tenants.add_argument(
        "--check",
        action="store_true",
        help="validate and print the quota table (the default action; "
        "the flag exists for scripting clarity)",
    )
    p_tenants.set_defaults(func=_cmd_tenants)

    connect_help = "address of the running service (host:port or socket path)"

    token_help = (
        "bearer token for a tenanted service (defaults to the "
        "REPRO_TOKEN environment variable)"
    )

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a daemon or coordinator with synthetic traffic "
        "and report p50/p95/p99 latency",
    )
    p_loadgen.add_argument(
        "--connect", required=True, metavar="ADDR", help=connect_help
    )
    p_loadgen.add_argument(
        "--clients",
        type=_positive_int,
        default=4,
        help="concurrent client threads (default 4)",
    )
    p_loadgen.add_argument(
        "--rate",
        type=float,
        default=2.0,
        metavar="HZ",
        help="aggregate Poisson submission rate in jobs/s (default 2)",
    )
    p_loadgen.add_argument(
        "--duration",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="how long to generate new submissions; in-flight work "
        "is followed to completion (default 5)",
    )
    p_loadgen.add_argument(
        "--benchmark",
        action="append",
        default=None,
        metavar="NAME",
        help="benchmark drawn per submission (repeatable; default "
        "BV-14)",
    )
    p_loadgen.add_argument(
        "--backend",
        default="powermove",
        metavar="NAME",
        help="backend every submission compiles with "
        "(default powermove)",
    )
    p_loadgen.add_argument(
        "--distinct",
        type=_positive_int,
        default=4,
        metavar="N",
        help="job seeds cycle over this many values -- the cache-hit "
        "mix knob (default 4)",
    )
    p_loadgen.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed of the generator itself (default 0)",
    )
    p_loadgen.add_argument(
        "--progress",
        action="store_true",
        help="print a line per completed submission to stderr",
    )
    p_loadgen.add_argument(
        "--scrape",
        default=None,
        metavar="URL",
        help="sample this GET /metrics URL ('serve --metrics') once "
        "per second while the burst runs and embed the series in the "
        "report's 'scrape' block",
    )
    p_loadgen.add_argument(
        "--output",
        help="write the latency report JSON here (default: stdout)",
    )
    p_loadgen.add_argument(
        "--token", default=None, metavar="TOKEN", help=token_help
    )
    p_loadgen.set_defaults(func=_cmd_loadgen)

    p_submit = sub.add_parser(
        "submit", help="send a job manifest to a running service"
    )
    p_submit.add_argument("manifest", help="path to the job manifest JSON")
    p_submit.add_argument(
        "--connect", required=True, metavar="ADDR", help=connect_help
    )
    p_submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="scheduling priority (higher runs first; default 0)",
    )
    p_submit.add_argument(
        "--json",
        action="store_true",
        help="print the raw submit response JSON",
    )
    p_submit.add_argument(
        "--token", default=None, metavar="TOKEN", help=token_help
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="queue occupancy of a running service"
    )
    p_status.add_argument(
        "submission",
        nargs="?",
        default=None,
        help="restrict to one submission id",
    )
    p_status.add_argument(
        "--connect", required=True, metavar="ADDR", help=connect_help
    )
    p_status.add_argument(
        "--json",
        action="store_true",
        help="print the raw status response JSON",
    )
    p_status.add_argument(
        "--token", default=None, metavar="TOKEN", help=token_help
    )
    p_status.set_defaults(func=_cmd_status)

    p_trace = sub.add_parser(
        "trace",
        help="render one finished job's span timeline as a tree",
    )
    p_trace.add_argument(
        "job",
        help="job id from 'repro status SUBMISSION' "
        "(daemon: s000001-00003; coordinator: c000001-00003)",
    )
    p_trace.add_argument(
        "--connect", required=True, metavar="ADDR", help=connect_help
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="print the raw trace-v1 document instead of the tree",
    )
    p_trace.add_argument(
        "--token", default=None, metavar="TOKEN", help=token_help
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_results = sub.add_parser(
        "results",
        help="fetch a submission's result records as NDJSON",
    )
    p_results.add_argument("submission", help="submission id")
    p_results.add_argument(
        "--connect", required=True, metavar="ADDR", help=connect_help
    )
    p_results.add_argument(
        "--follow",
        action="store_true",
        help="stream records as jobs complete until the submission "
        "finishes (same schema as 'batch --stream')",
    )
    p_results.add_argument(
        "--output",
        help="also write the assembled batch-results document here "
        "(the submission must be complete)",
    )
    p_results.add_argument(
        "--token", default=None, metavar="TOKEN", help=token_help
    )
    p_results.set_defaults(func=_cmd_results)

    p_shutdown = sub.add_parser(
        "shutdown", help="stop a running service"
    )
    p_shutdown.add_argument(
        "--connect", required=True, metavar="ADDR", help=connect_help
    )
    p_shutdown.add_argument(
        "--now",
        action="store_true",
        help="stop without draining (queued jobs stay on disk for the "
        "next daemon)",
    )
    p_shutdown.add_argument(
        "--fleet",
        action="store_true",
        help="when --connect points at a coordinator: also shut down "
        "every live daemon it knows about",
    )
    p_shutdown.add_argument(
        "--token", default=None, metavar="TOKEN", help=token_help
    )
    p_shutdown.set_defaults(func=_cmd_shutdown)

    p_table2 = sub.add_parser("table2", help="print the Table 2 reproduction")
    p_table2.set_defaults(func=_cmd_table2)

    p_table3 = sub.add_parser("table3", help="print a Table 3 reproduction")
    p_table3.add_argument("--keys", nargs="*", default=None)
    p_table3.add_argument("--seed", type=int, default=0)
    p_table3.add_argument("--mis-restarts", type=int, default=5)
    p_table3.add_argument("--sa-iterations", type=int, default=150)
    p_table3.add_argument(
        "--backend",
        default="powermove",
        metavar="NAME",
        help="registry backend for the 'Ours (ws)' columns "
        "(default: powermove)",
    )
    p_table3.add_argument(
        "--arch",
        default=None,
        metavar="NAME",
        help="architecture-catalog entry every scenario compiles onto "
        "(see 'repro architectures')",
    )
    _add_engine_options(p_table3)
    p_table3.set_defaults(func=_cmd_table3)

    p_backends = sub.add_parser(
        "backends", help="list registered compiler backends"
    )
    p_backends.add_argument(
        "--json",
        action="store_true",
        help="print the registry as a JSON document (name, knobs, "
        "passes, strategy axes)",
    )
    p_backends.set_defaults(func=_cmd_backends)

    p_arch = sub.add_parser(
        "architectures", help="list the named architecture catalog"
    )
    p_arch.add_argument(
        "--json",
        action="store_true",
        help="print the catalog as a JSON document",
    )
    p_arch.add_argument(
        "--qubits",
        type=int,
        default=64,
        metavar="N",
        help="reference workload size the example floor plans are "
        "built at (default 64)",
    )
    p_arch.set_defaults(func=_cmd_architectures)

    p_cache = sub.add_parser(
        "cache",
        help="compiled-program cache maintenance and the cache server",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_prune = cache_sub.add_parser(
        "prune", help="evict least-recently-used entries to a size budget"
    )
    _add_cache_options(p_prune, required=True)
    p_prune.add_argument(
        "--max-bytes",
        type=int,
        default=0,
        help="size budget in bytes (default 0: remove every entry)",
    )
    p_prune.set_defaults(func=_cmd_cache_prune)
    p_info = cache_sub.add_parser(
        "info", help="print per-tier entry counts and sizes"
    )
    _add_cache_options(p_info, required=True)
    p_info.add_argument(
        "--json",
        action="store_true",
        help="print the raw info document JSON",
    )
    p_info.set_defaults(func=_cmd_cache_info)
    p_cache_serve = cache_sub.add_parser(
        "serve",
        help="run the shared HTTP cache server (the remote: tier)",
    )
    p_cache_serve.add_argument(
        "directory",
        type=_cache_dir_path,
        help="disk-cache directory backing the server",
    )
    p_cache_serve.add_argument(
        "--listen",
        default="127.0.0.1:8123",
        metavar="HOST:PORT",
        help="TCP listen address (default 127.0.0.1:8123; port 0 "
        "binds an ephemeral port)",
    )
    p_cache_serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="server-side LRU eviction budget in bytes "
        "(default: unbounded)",
    )
    p_cache_serve.set_defaults(func=_cmd_cache_serve)

    p_verify = sub.add_parser(
        "verify", help="state-vector equivalence check (<= 12 qubits)"
    )
    p_verify.add_argument("file", help="path to the .qasm file")
    p_verify.add_argument(
        "--no-storage", dest="storage", action="store_false"
    )
    p_verify.add_argument("--aods", type=int, default=1)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.set_defaults(func=_cmd_verify, storage=True)

    p_profile = sub.add_parser(
        "profile", help="structural workload characterisation"
    )
    p_profile.add_argument("file", help="path to the .qasm file")
    p_profile.set_defaults(func=_cmd_profile)

    p_score = sub.add_parser(
        "scorecard", help="paper-vs-measured shape checks"
    )
    p_score.add_argument("--keys", nargs="*", default=None)
    p_score.add_argument("--seed", type=int, default=0)
    p_score.add_argument("--mis-restarts", type=int, default=5)
    p_score.add_argument("--sa-iterations", type=int, default=150)
    p_score.add_argument(
        "--min-score",
        type=float,
        default=0.0,
        help="exit non-zero when the pass fraction falls below this",
    )
    p_score.set_defaults(func=_cmd_scorecard)

    p_fig7 = sub.add_parser("fig7", help="print the Fig. 7 multi-AOD series")
    p_fig7.add_argument("--keys", nargs="*", default=None)
    p_fig7.add_argument(
        "--aod-counts", nargs="*", type=int, default=[1, 2, 3, 4]
    )
    p_fig7.add_argument("--seed", type=int, default=0)
    p_fig7.add_argument(
        "--backend",
        default="powermove",
        metavar="NAME",
        help="registry backend swept over the AOD grid "
        "(default: powermove)",
    )
    p_fig7.add_argument(
        "--arch",
        default=None,
        metavar="NAME",
        help="architecture-catalog entry every grid point compiles "
        "onto (see 'repro architectures')",
    )
    _add_engine_options(p_fig7)
    p_fig7.set_defaults(func=_cmd_fig7)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
