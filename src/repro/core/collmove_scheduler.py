"""Coll-Move Scheduler (paper Sec. 6).

Orders and parallelises the collective moves of one layout transition:

* **Intra-stage scheduling** (Sec. 6.1): CollMoves are sorted by
  descending ``n_in - n_out`` (storage move-ins minus move-outs), so moves
  that park qubits in the protected storage zone run first and moves that
  fetch qubits out run last -- maximising storage dwell time and thus
  minimising decoherence.  As a beneficial side effect, compute-site
  departures (into storage) precede arrivals (out of storage), keeping
  transient site pressure low.

* **Multi-AOD scheduling** (Sec. 6.2): with ``n`` independent AOD arrays,
  the ordered CollMoves ``G'_1..G'_k`` are chunked into parallel batches
  of ``n``; the r-th batch runs its members concurrently on distinct
  arrays and completes in ``t_transfer``-bookended ``max`` time.  The
  number of transfers (and hence the transfer-fidelity term) is unchanged;
  only wall-clock time shrinks.
"""

from __future__ import annotations

from ..hardware.moves import CollMove
from ..hardware.params import HardwareParams
from ..schedule.instructions import MoveBatch


def order_coll_moves(
    coll_moves: list[CollMove], prioritize_move_ins: bool = True
) -> list[CollMove]:
    """Sec. 6.1: sort by descending ``n_in - n_out`` (stable).

    With ``prioritize_move_ins=False`` (ablation A3) the grouping order is
    kept as-is.
    """
    if not prioritize_move_ins:
        return list(coll_moves)
    indexed = list(enumerate(coll_moves))
    indexed.sort(
        key=lambda pair: (
            -(pair[1].num_into_storage - pair[1].num_out_of_storage),
            pair[0],
        )
    )
    return [cm for _, cm in indexed]


def schedule_coll_moves(
    coll_moves: list[CollMove],
    num_aods: int = 1,
    prioritize_move_ins: bool = True,
) -> list[MoveBatch]:
    """Order CollMoves and chunk them into parallel MoveBatches (Sec. 6.2).

    Args:
        coll_moves: CollMoves of one layout transition.
        num_aods: Independent AOD arrays; batch width.
        prioritize_move_ins: Apply the Sec. 6.1 intra-stage ordering.

    Returns:
        MoveBatches in execution order; each holds up to ``num_aods``
        CollMoves with distinct ``aod_index`` values assigned.
    """
    if num_aods < 1:
        raise ValueError("need at least one AOD array")
    ordered = order_coll_moves(coll_moves, prioritize_move_ins)
    batches: list[MoveBatch] = []
    for start in range(0, len(ordered), num_aods):
        chunk = ordered[start:start + num_aods]
        for aod, cm in enumerate(chunk):
            cm.aod_index = aod
        batches.append(MoveBatch(coll_moves=chunk))
    return batches


def transition_duration(
    batches: list[MoveBatch], params: HardwareParams
) -> float:
    """Total wall-clock time of one layout transition (seconds)."""
    return sum(batch.duration(params) for batch in batches)


__all__ = ["order_coll_moves", "schedule_coll_moves", "transition_duration"]
