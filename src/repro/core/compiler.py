"""The PowerMove compiler (paper Sec. 4-6 assembled).

Pipeline::

    circuit --transpile--> native {1Q, CZ-class}
            --block partition--> commuting CZ blocks + 1Q gaps
            --Stage Scheduler--> ordered Rydberg stages        (Sec. 4)
            --Continuous Router--> 1Q moves, CollMoves          (Sec. 5)
            --Coll-Move Scheduler--> ordered parallel batches   (Sec. 6)
            --> NAProgram

Two scenarios from the paper's evaluation are both first-class:

* ``PowerMoveConfig(use_storage=False)`` -- the *non-storage* case: only
  the continuous router runs, all qubits stay in the computation zone;
* ``PowerMoveConfig(use_storage=True)`` -- the *with-storage* case: the
  stage scheduler, storage parking and the intra-stage move-in-first
  ordering are all active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..circuits.blocks import partition_into_blocks
from ..circuits.circuit import Circuit
from ..circuits.transpile import transpile_to_native
from ..hardware.geometry import Zone, ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.moves import group_moves
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.instructions import OneQubitLayer, RydbergStage
from ..schedule.program import NAProgram
from ..schedule.tracker import PositionTracker
from ..utils.rng import make_rng
from .collmove_scheduler import schedule_coll_moves
from .config import PowerMoveConfig
from .continuous_router import ContinuousRouter
from .stage_scheduler import schedule_block


@dataclass
class CompilationResult:
    """Output of one compiler run.

    Attributes:
        program: The compiled NAQC program.
        compile_time: Wall-clock compilation seconds (``T_comp``).
        native_circuit: The transpiled source circuit actually compiled.
        stats: Compiler statistics (block/stage/move counts).
    """

    program: NAProgram
    compile_time: float
    native_circuit: Circuit
    stats: dict = field(default_factory=dict)


class PowerMoveCompiler:
    """PowerMove: zoned-architecture-aware movement compiler.

    Args:
        config: Component configuration (storage, alpha, AODs, ablations).
        params: Hardware constants (Table 1 defaults).

    Example:
        >>> from repro.circuits.generators import qaoa_regular
        >>> from repro.core import PowerMoveCompiler, PowerMoveConfig
        >>> compiler = PowerMoveCompiler(PowerMoveConfig(use_storage=True))
        >>> result = compiler.compile(qaoa_regular(10, seed=1))
        >>> result.program.num_stages > 0
        True
    """

    name = "powermove"

    def __init__(
        self,
        config: PowerMoveConfig | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        self._config = config or PowerMoveConfig()
        self._params = params

    @property
    def config(self) -> PowerMoveConfig:
        """Active configuration."""
        return self._config

    @property
    def variant_name(self) -> str:
        """Scenario label used in reports."""
        suffix = "with-storage" if self._config.use_storage else "non-storage"
        return f"{self.name}[{suffix}]"

    # ------------------------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        architecture: ZonedArchitecture | None = None,
        initial_layout: Layout | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` into a movement program.

        Args:
            circuit: Input circuit (non-native 2Q gates are transpiled).
            architecture: Target machine; the paper-default floor plan for
                the circuit's qubit count when omitted.
            initial_layout: Starting placement; defaults to row-major in
                the storage zone (with storage; Sec. 4.2 "an initial
                layout is placed entirely in the storage zone") or in the
                computation zone (without), or the Enola-style annealed
                placement when ``config.annealed_placement``.

        Returns:
            The :class:`CompilationResult` with the validated-shape
            program and compile-time measurement.
        """
        start = time.perf_counter()
        cfg = self._config
        native = transpile_to_native(circuit)
        partition = partition_into_blocks(native)
        arch = architecture or ZonedArchitecture.for_qubits(
            native.num_qubits,
            with_storage=cfg.use_storage,
            num_aods=cfg.num_aods,
            params=self._params,
        )
        if cfg.use_storage and not arch.has_storage:
            raise ValueError("with-storage compilation needs a storage zone")
        home_zone = Zone.STORAGE if cfg.use_storage else Zone.COMPUTE
        if initial_layout is None:
            initial_layout = self._build_initial_layout(
                arch, native, home_zone
            )
        rng = make_rng(cfg.seed)
        router = ContinuousRouter(arch, cfg.use_storage, rng)

        instructions = []
        layout = initial_layout.copy()
        total_stages = 0
        total_moves = 0
        total_coll_moves = 0
        for block in partition.blocks:
            gap = partition.one_qubit_gaps[block.index]
            if gap:
                instructions.append(OneQubitLayer(list(gap)))
            stages = schedule_block(
                block,
                alpha=cfg.alpha,
                reorder=cfg.use_storage and cfg.reorder_stages,
                ordering=cfg.stage_ordering,
            )
            for stage in stages:
                pairs = [
                    (g.qubits[0], g.qubits[1]) for g in stage.gates
                ]
                routed = router.route_stage(layout, pairs)
                groups = group_moves(
                    routed.moves,
                    distance_aware=cfg.distance_aware_grouping,
                )
                batches = schedule_coll_moves(
                    groups,
                    num_aods=cfg.num_aods,
                    prioritize_move_ins=cfg.intra_stage_ordering,
                )
                instructions.extend(batches)
                layout.apply_moves(routed.moves)
                instructions.append(RydbergStage(gates=list(stage.gates)))
                total_stages += 1
                total_moves += routed.num_moves
                total_coll_moves += len(groups)
        trailing = partition.one_qubit_gaps[partition.num_blocks]
        if trailing:
            instructions.append(OneQubitLayer(list(trailing)))

        program = NAProgram(
            architecture=arch,
            initial_layout=initial_layout,
            instructions=instructions,
            source_name=circuit.name,
            compiler_name=self.variant_name,
            metadata={
                "num_blocks": partition.num_blocks,
                "num_stages": total_stages,
                "num_single_moves": total_moves,
                "num_coll_moves": total_coll_moves,
                "use_storage": cfg.use_storage,
                "num_aods": cfg.num_aods,
                "alpha": cfg.alpha,
            },
        )
        compile_time = time.perf_counter() - start
        return CompilationResult(
            program=program,
            compile_time=compile_time,
            native_circuit=native,
            stats=dict(program.metadata),
        )

    # ------------------------------------------------------------------

    def _build_initial_layout(
        self,
        arch: ZonedArchitecture,
        native: Circuit,
        home_zone: Zone,
    ) -> Layout:
        if self._config.annealed_placement:
            from ..baselines.placement import annealed_layout

            return annealed_layout(
                arch,
                native,
                zone=home_zone,
                rng=make_rng(self._config.seed),
            )
        return Layout.row_major(arch, native.num_qubits, home_zone)


def compile_circuit(
    circuit: Circuit,
    use_storage: bool = True,
    num_aods: int = 1,
    seed: int = 0,
    architecture: ZonedArchitecture | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
) -> CompilationResult:
    """One-call convenience wrapper around :class:`PowerMoveCompiler`."""
    config = PowerMoveConfig(
        use_storage=use_storage, num_aods=num_aods, seed=seed
    )
    return PowerMoveCompiler(config, params).compile(circuit, architecture)


__all__ = ["CompilationResult", "PowerMoveCompiler", "compile_circuit"]
