"""The PowerMove compiler (paper Sec. 4-6 assembled).

Pipeline::

    circuit --transpile--> native {1Q, CZ-class}
            --block partition--> commuting CZ blocks + 1Q gaps
            --Stage Scheduler--> ordered Rydberg stages        (Sec. 4)
            --Continuous Router--> 1Q moves, CollMoves          (Sec. 5)
            --Coll-Move Scheduler--> ordered parallel batches   (Sec. 6)
            --> NAProgram

Since the pass-pipeline refactor the stages above are literal
:class:`~repro.pipeline.base.Pass` objects composed by the backend
registry (see :mod:`repro.pipeline`); :class:`PowerMoveCompiler` is the
stable facade over the ``powermove`` / ``powermove-nonstorage``
backends.

Two scenarios from the paper's evaluation are both first-class:

* ``PowerMoveConfig(use_storage=False)`` -- the *non-storage* case: only
  the continuous router runs, all qubits stay in the computation zone;
* ``PowerMoveConfig(use_storage=True)`` -- the *with-storage* case: the
  stage scheduler, storage parking and the intra-stage move-in-first
  ordering are all active.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..hardware.geometry import ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.program import NAProgram
from .config import PowerMoveConfig


@dataclass
class CompilationResult:
    """Output of one compiler run.

    Attributes:
        program: The compiled NAQC program.
        compile_time: Wall-clock compilation seconds (``T_comp``).
        native_circuit: The transpiled source circuit actually compiled.
        stats: Compiler statistics (block/stage/move counts, plus the
            per-pass wall-clock seconds under ``stats["pass_timings"]``).
    """

    program: NAProgram
    compile_time: float
    native_circuit: Circuit
    stats: dict = field(default_factory=dict)


class PowerMoveCompiler:
    """PowerMove: zoned-architecture-aware movement compiler.

    A thin facade over the backend registry: ``use_storage`` selects the
    ``powermove`` or ``powermove-nonstorage`` pipeline and the config is
    passed through verbatim, so compiled programs are bit-identical to
    the historical monolithic implementation.

    Args:
        config: Component configuration (storage, alpha, AODs, ablations).
        params: Hardware constants (Table 1 defaults).

    Example:
        >>> from repro.circuits.generators import qaoa_regular
        >>> from repro.core import PowerMoveCompiler, PowerMoveConfig
        >>> compiler = PowerMoveCompiler(PowerMoveConfig(use_storage=True))
        >>> result = compiler.compile(qaoa_regular(10, seed=1))
        >>> result.program.num_stages > 0
        True
    """

    name = "powermove"

    def __init__(
        self,
        config: PowerMoveConfig | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        self._config = config or PowerMoveConfig()
        self._params = params

    @property
    def config(self) -> PowerMoveConfig:
        """Active configuration."""
        return self._config

    @property
    def variant_name(self) -> str:
        """Scenario label used in reports."""
        suffix = "with-storage" if self._config.use_storage else "non-storage"
        return f"{self.name}[{suffix}]"

    @property
    def backend_name(self) -> str:
        """The registry backend this facade resolves to."""
        return "powermove" if self._config.use_storage else (
            "powermove-nonstorage"
        )

    # ------------------------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        architecture: ZonedArchitecture | None = None,
        initial_layout: Layout | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` into a movement program.

        Args:
            circuit: Input circuit (non-native 2Q gates are transpiled).
            architecture: Target machine; the paper-default floor plan for
                the circuit's qubit count when omitted.
            initial_layout: Starting placement; defaults to row-major in
                the storage zone (with storage; Sec. 4.2 "an initial
                layout is placed entirely in the storage zone") or in the
                computation zone (without), or the Enola-style annealed
                placement when ``config.annealed_placement``.

        Returns:
            The :class:`CompilationResult` with the validated-shape
            program and compile-time measurement.
        """
        from ..pipeline.registry import create_compiler

        return create_compiler(
            self.backend_name, self._config, self._params
        ).compile(circuit, architecture, initial_layout)


def compile_circuit(
    circuit: Circuit,
    use_storage: bool = True,
    num_aods: int = 1,
    seed: int = 0,
    architecture: ZonedArchitecture | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
) -> CompilationResult:
    """One-call convenience wrapper around :class:`PowerMoveCompiler`."""
    config = PowerMoveConfig(
        use_storage=use_storage, num_aods=num_aods, seed=seed
    )
    return PowerMoveCompiler(config, params).compile(circuit, architecture)


__all__ = ["CompilationResult", "PowerMoveCompiler", "compile_circuit"]
