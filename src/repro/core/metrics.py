"""Compiler-quality metrics over compiled programs.

Quantifies *why* one schedule beats another, feeding the ablation
studies: movement parallelism (moves per CollMove), storage dwell
fraction (the quantity Sec. 6.1 maximises), per-stage Rydberg
utilisation, and movement-time decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fidelity.timeline import simulate_timeline
from ..schedule.program import NAProgram


@dataclass(frozen=True)
class ProgramMetrics:
    """Aggregate quality metrics of one compiled program.

    Attributes:
        num_stages: Rydberg excitation count ``S``.
        num_coll_moves: Total collective moves.
        num_single_moves: Total 1Q moves.
        moves_per_coll_move: Mean movement parallelism (higher = the
            grouper packed more 1Q moves per AOD shot).
        mean_move_distance: Mean 1Q travel distance (metres).
        total_move_distance: Summed 1Q travel distance (metres).
        transfer_time_fraction: Share of movement wall-clock spent in
            SLM<->AOD transfers rather than travel.
        storage_dwell_fraction: Mean over qubits of (protected storage
            time) / (total execution time); 0 without a storage zone.
        mean_stage_utilization: Mean over stages of (qubits in gates) /
            (placed qubits) -- low values mean many idle spectators.
        idle_excitations_per_stage: Mean ``n_i`` (excitation-error
            events per Rydberg shot).
        execution_time: ``T_exe`` seconds.
        movement_time_fraction: Share of ``T_exe`` spent in MoveBatches.
    """

    num_stages: int
    num_coll_moves: int
    num_single_moves: int
    moves_per_coll_move: float
    mean_move_distance: float
    total_move_distance: float
    transfer_time_fraction: float
    storage_dwell_fraction: float
    mean_stage_utilization: float
    idle_excitations_per_stage: float
    execution_time: float
    movement_time_fraction: float


def compute_metrics(program: NAProgram) -> ProgramMetrics:
    """Measure :class:`ProgramMetrics` for ``program``."""
    params = program.architecture.params
    timeline = simulate_timeline(program)

    num_moves = program.num_single_moves
    num_cm = program.num_coll_moves
    total_distance = program.total_move_distance()

    transfer_time = 0.0
    for batch in program.move_batches:
        if batch.num_coll_moves:
            transfer_time += 2.0 * params.duration_transfer

    num_qubits = program.initial_layout.num_qubits
    total_time = timeline.total_time
    if num_qubits and total_time > 0.0:
        dwell = sum(timeline.storage_dwell.values())
        storage_fraction = dwell / (num_qubits * total_time)
    else:
        storage_fraction = 0.0

    stages = program.rydberg_stages
    if stages and num_qubits:
        utilization = sum(
            len(stage.interacting_qubits()) / num_qubits for stage in stages
        ) / len(stages)
    else:
        utilization = 0.0

    idle_per_stage = (
        timeline.idle_excitations / timeline.num_stages
        if timeline.num_stages
        else 0.0
    )

    return ProgramMetrics(
        num_stages=program.num_stages,
        num_coll_moves=num_cm,
        num_single_moves=num_moves,
        moves_per_coll_move=(num_moves / num_cm) if num_cm else 0.0,
        mean_move_distance=(
            total_distance / num_moves if num_moves else 0.0
        ),
        total_move_distance=total_distance,
        transfer_time_fraction=(
            transfer_time / timeline.move_time
            if timeline.move_time > 0.0
            else 0.0
        ),
        storage_dwell_fraction=storage_fraction,
        mean_stage_utilization=utilization,
        idle_excitations_per_stage=idle_per_stage,
        execution_time=total_time,
        movement_time_fraction=(
            timeline.move_time / total_time if total_time > 0.0 else 0.0
        ),
    )


def compare_metrics(
    ours: ProgramMetrics, baseline: ProgramMetrics
) -> dict[str, float]:
    """Headline ratios of ``ours`` against ``baseline`` (>1 = better/us).

    Returns speedup, movement-reduction and parallelism ratios; values of
    ``inf`` indicate the baseline quantity was zero.
    """

    def ratio(a: float, b: float) -> float:
        return float("inf") if a == 0.0 else b / a

    return {
        "execution_speedup": ratio(ours.execution_time, baseline.execution_time),
        "move_count_reduction": ratio(
            float(ours.num_single_moves), float(baseline.num_single_moves)
        ),
        "distance_reduction": ratio(
            ours.total_move_distance, baseline.total_move_distance
        ),
        "parallelism_gain": (
            float("inf")
            if baseline.moves_per_coll_move == 0.0
            else ours.moves_per_coll_move / baseline.moves_per_coll_move
        ),
    }


__all__ = ["ProgramMetrics", "compare_metrics", "compute_metrics"]
