"""PowerMove core: the paper's three components and the compiler facade.

The algorithmic pieces (stage scheduler, continuous router, coll-move
scheduler) live here; :class:`PowerMoveCompiler` composes them through
the pass pipeline in :mod:`repro.pipeline`.
"""

from .collmove_scheduler import (
    order_coll_moves,
    schedule_coll_moves,
    transition_duration,
)
from .compiler import CompilationResult, PowerMoveCompiler, compile_circuit
from .config import PowerMoveConfig
from .metrics import ProgramMetrics, compare_metrics, compute_metrics
from .continuous_router import (
    ContinuousRouter,
    RoutedStage,
    RoutingError,
    route_and_group,
)
from .stage_scheduler import (
    Stage,
    order_stages,
    partition_stages,
    schedule_block,
    transition_cost,
)

__all__ = [
    "CompilationResult",
    "ContinuousRouter",
    "PowerMoveCompiler",
    "PowerMoveConfig",
    "ProgramMetrics",
    "RoutedStage",
    "RoutingError",
    "Stage",
    "compare_metrics",
    "compile_circuit",
    "compute_metrics",
    "order_coll_moves",
    "order_stages",
    "partition_stages",
    "route_and_group",
    "schedule_block",
    "schedule_coll_moves",
    "transition_cost",
    "transition_duration",
]
