"""Stage Scheduler (paper Sec. 4).

Two responsibilities:

1. **Stage partition** (Sec. 4.1, Algorithm 1): split a commuting CZ block
   into *stages* -- groups of gates on pairwise-disjoint qubits that one
   Rydberg excitation can execute in parallel.  This is greedy colouring
   of the block's gate-conflict graph; the default visiting order is the
   DSATUR (dynamic saturation) refinement of the paper's static
   descending-degree order -- same greedy AssignColor, same near-linear
   cost, but it consistently reaches the Vizing-optimal stage count on
   the benchmark families (the literal ordering is available via
   ``ordering="degree"``).

2. **Stage scheduling** (Sec. 4.2): because the block's gates all commute,
   its stages may run in any order.  With a storage zone, ordering decides
   how many qubits shuttle between zones at each transition.  The first
   stage is the one with the fewest interacting qubits (leave as many
   qubits as possible parked in storage); each subsequent stage greedily
   minimises

       |Q_cur \\ Q_next|  +  alpha * |Q_next \\ Q_cur|,   alpha < 1

   i.e. full weight on qubits that will retire *into* storage and reduced
   weight on qubits that must be fetched *out*, reflecting that dwell time
   in storage is free of decoherence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..circuits.blocks import CZBlock
from ..circuits.gates import Gate


@dataclass
class Stage:
    """One Rydberg stage: CZ-class gates on pairwise-disjoint qubits.

    Attributes:
        gates: Member gates.
        block_index: Index of the source commuting block.
        color: Colour assigned by the partition algorithm (stable id).
    """

    gates: list[Gate] = field(default_factory=list)
    block_index: int = 0
    color: int = 0

    @property
    def num_gates(self) -> int:
        """Number of gates executed by this stage."""
        return len(self.gates)

    def interacting_qubits(self) -> frozenset[int]:
        """Qubits participating in a CZ during this stage."""
        qubits: set[int] = set()
        for gate in self.gates:
            qubits.update(gate.qubits)
        return frozenset(qubits)

    def validate(self) -> None:
        """Assert the disjointness invariant."""
        seen: set[int] = set()
        for gate in self.gates:
            for q in gate.qubits:
                assert q not in seen, f"stage gates overlap on qubit {q}"
                seen.add(q)


def _greedy_color_static(
    adjacency: dict[int, list[int]], n: int
) -> list[int]:
    """Literal Algorithm 1: one pass in descending-degree order."""
    degrees = {v: len(neigh) for v, neigh in adjacency.items()}
    order = sorted(range(n), key=lambda v: (-degrees[v], v))
    color = [-1] * n
    for vertex in order:
        taken = {color[u] for u in adjacency[vertex] if color[u] != -1}
        c = 0
        while c in taken:
            c += 1
        color[vertex] = c
    return color


def _greedy_color_saturation(
    adjacency: dict[int, list[int]], n: int
) -> list[int]:
    """DSATUR refinement: visit vertices by dynamic saturation degree.

    Same greedy colour assignment as Algorithm 1, but the visiting order
    is recomputed as colours land: always pick the uncoloured vertex whose
    neighbours already use the most distinct colours (ties: higher degree,
    then input order).  On the line graphs these blocks induce, this
    reliably reaches the Vizing-optimal stage count where a single static
    degree ordering can overshoot by one or two stages.

    The selection runs on a lazy max-heap keyed ``(saturation, degree,
    -vertex)`` with stale-entry skipping, so each round costs O(log V)
    instead of rescanning every uncoloured vertex -- the selection
    sequence (and therefore the colouring) is identical to the
    historical linear-scan ``max``.
    """
    color = [-1] * n
    saturation: list[set[int]] = [set() for _ in range(n)]
    degrees = [len(adjacency[v]) for v in range(n)]
    # heapq is a min-heap; negate saturation/degree so popping the
    # smallest tuple yields max-saturation, then max-degree, then the
    # lowest vertex id -- the exact historical tie-break.
    heap = [(0, -degrees[v], v) for v in range(n)]
    heapq.heapify(heap)
    colored = 0
    while colored < n:
        neg_sat, _neg_deg, vertex = heapq.heappop(heap)
        if color[vertex] != -1 or -neg_sat != len(saturation[vertex]):
            continue  # stale entry: superseded or already coloured
        c = 0
        while c in saturation[vertex]:
            c += 1
        color[vertex] = c
        colored += 1
        for u in adjacency[vertex]:
            if color[u] == -1 and c not in saturation[u]:
                saturation[u].add(c)
                heapq.heappush(
                    heap, (-len(saturation[u]), -degrees[u], u)
                )
    return color


def partition_stages(
    block: CZBlock, ordering: str = "saturation"
) -> list[Stage]:
    """Algorithm 1: partition a commuting block into parallel stages.

    Gates are vertices of the block's conflict graph (edges join gates
    sharing a qubit); greedy colouring assigns each the smallest colour
    unused among coloured neighbours, and gates of one colour form one
    stage.

    Args:
        block: The commuting CZ block to partition.
        ordering: Vertex visiting order for ``AssignColor``:
            ``"saturation"`` (default, DSATUR -- dynamically most-
            saturated first) or ``"degree"`` (the paper's literal static
            descending-degree order).  Both are near-linear heuristics;
            saturation matches or beats the static order on every
            benchmark family (fewer stages = fewer Rydberg excitations).

    Returns stages ordered by colour; every gate appears in exactly one.
    """
    gates = block.gates
    n = len(gates)
    if n == 0:
        return []
    adjacency = block.interaction_graph()
    if ordering == "saturation":
        color = _greedy_color_saturation(adjacency, n)
    elif ordering == "degree":
        color = _greedy_color_static(adjacency, n)
    else:
        raise ValueError(f"unknown ordering {ordering!r}")
    num_colors = max(color) + 1
    stages = [
        Stage(block_index=block.index, color=c) for c in range(num_colors)
    ]
    for vertex, c in enumerate(color):
        stages[c].gates.append(gates[vertex])
    for stage in stages:
        stage.validate()
    return stages


def transition_cost(
    current: frozenset[int], candidate: frozenset[int], alpha: float
) -> float:
    """Sec. 4.2 stage-difference metric ``|Qc\\Qn| + alpha*|Qn\\Qc|``."""
    return len(current - candidate) + alpha * len(candidate - current)


def order_stages(stages: list[Stage], alpha: float = 0.5) -> list[Stage]:
    """Sec. 4.2: order stages to minimise inter-zone interchange.

    The first stage has the fewest interacting qubits; each next stage
    greedily minimises :func:`transition_cost` against the current one.
    Ties break on the partition colour for determinism.

    Args:
        stages: Stages of one commuting block (freely reorderable).
        alpha: Move-out weight in (0, 1).

    Returns:
        A new list containing the same stages in scheduled order.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if len(stages) <= 1:
        return list(stages)
    remaining = list(stages)
    qubit_sets = {id(s): s.interacting_qubits() for s in remaining}
    first = min(
        remaining, key=lambda s: (len(qubit_sets[id(s)]), s.color)
    )
    ordered = [first]
    remaining.remove(first)
    current = qubit_sets[id(first)]
    while remaining:
        nxt = min(
            remaining,
            key=lambda s: (
                transition_cost(current, qubit_sets[id(s)], alpha),
                s.color,
            ),
        )
        ordered.append(nxt)
        remaining.remove(nxt)
        current = qubit_sets[id(nxt)]
    return ordered


def order_stages_reuse(stages: list[Stage]) -> list[Stage]:
    """Reuse-aware ordering: maximise qubit overlap between neighbours.

    The mirror image of :func:`order_stages`: instead of minimising the
    number of qubits *changing* between consecutive stages, greedily
    maximise the number *shared* -- qubits already parked in the
    computation zone get reused by the next stage, in the spirit of the
    atom-reuse schedulers of Lin/Tan/Cong (arXiv:2411.11784).  The first
    stage is the one touching the most qubits (ties: lowest colour);
    each next stage has the largest interacting-qubit overlap with the
    current one (ties: lowest colour).  Deterministic, no randomness.
    """
    if len(stages) <= 1:
        return list(stages)
    remaining = list(stages)
    qubit_sets = {id(s): s.interacting_qubits() for s in remaining}
    first = max(
        remaining, key=lambda s: (len(qubit_sets[id(s)]), -s.color)
    )
    ordered = [first]
    remaining.remove(first)
    current = qubit_sets[id(first)]
    while remaining:
        nxt = max(
            remaining,
            key=lambda s: (len(current & qubit_sets[id(s)]), -s.color),
        )
        ordered.append(nxt)
        remaining.remove(nxt)
        current = qubit_sets[id(nxt)]
    return ordered


def schedule_block(
    block: CZBlock,
    alpha: float = 0.5,
    reorder: bool = True,
    ordering: str = "saturation",
) -> list[Stage]:
    """Partition a block into stages and (optionally) order them."""
    stages = partition_stages(block, ordering=ordering)
    if reorder:
        return order_stages(stages, alpha)
    return stages


__all__ = [
    "Stage",
    "order_stages",
    "order_stages_reuse",
    "partition_stages",
    "schedule_block",
    "transition_cost",
]
