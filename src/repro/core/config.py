"""Configuration of the PowerMove compiler.

Every design choice the paper's ablation study (and ours) toggles is a
field here, so experiments can switch individual components on and off
without touching compiler code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerMoveConfig:
    """Knobs of the PowerMove compiler.

    Attributes:
        use_storage: Integrate the storage zone (the paper's *with-storage*
            scenario).  When False only the continuous router runs and all
            qubits stay in the computation zone (*non-storage* scenario).
        alpha: Stage-ordering weight for move-outs (Sec. 4.2); must be in
            (0, 1) -- the paper assigns a *lower* weight to qubits entering
            the next stage's interacting set because moving into storage is
            preferable to moving out.
        num_aods: Independent AOD arrays available for parallel CollMoves.
        seed: Seed for the router's case-4 random mobile/static choice.
        reorder_stages: Enable the Stage Scheduler's zone-aware ordering
            (ablation A1 disables it; meaningful only with storage).
        distance_aware_grouping: Sort 1Q moves by ascending distance before
            greedy CollMove grouping (Sec. 5.3; ablation A2 uses FIFO).
        intra_stage_ordering: Order CollMoves by descending
            ``n_in - n_out`` (Sec. 6.1; ablation A3 disables it).
        annealed_placement: Use the Enola-style simulated-annealing initial
            placement instead of the fast row-major grid.  PowerMove's
            layout role is minor (Sec. 4.2: the layout never returns to the
            initial configuration), so the fast default keeps compile time
            near-linear.
        stage_ordering: Vertex visiting order for Algorithm 1's greedy
            colouring: ``"saturation"`` (DSATUR, default) or ``"degree"``
            (the paper's literal static order); see
            :func:`repro.core.stage_scheduler.partition_stages`.
    """

    use_storage: bool = True
    alpha: float = 0.5
    num_aods: int = 1
    seed: int = 0
    reorder_stages: bool = True
    distance_aware_grouping: bool = True
    intra_stage_ordering: bool = True
    annealed_placement: bool = False
    stage_ordering: str = "saturation"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.num_aods < 1:
            raise ValueError("need at least one AOD array")
        if self.stage_ordering not in ("saturation", "degree"):
            raise ValueError(
                f"unknown stage_ordering {self.stage_ordering!r}"
            )


__all__ = ["PowerMoveConfig"]
