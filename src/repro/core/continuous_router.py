"""Continuous Router (paper Sec. 5).

Unlike Enola, which reverts to a fixed initial layout after every Rydberg
stage, the continuous router computes a *direct* transition from the
current layout into a layout executing the next stage.  It runs in two
steps:

1. **Single-qubit movement decision** (Sec. 5.2) -- assign every qubit a
   target site for the next stage:

   * Step 1: non-interacting qubits resident in the computation zone are
     parked in storage, processed in descending-y order (qubits farther
     from storage choose first) and sent to the nearest empty storage site.
   * Step 2: interacting qubits are labelled ``static`` / ``mobile`` /
     ``undecided`` through the four location cases of Fig. 4 (both in
     storage; one in storage; both in computation).  A qubit can be static
     only if its site holds no *blocking* occupant -- a previously
     labelled static qubit, an already-routed arrival, or (non-storage
     mode) a non-interacting qubit that stays put.
   * Step 3: every ``undecided`` qubit gets the nearest empty
     computation-zone site around its current location; its mobile partner
     follows it there.

2. **Coll-Move grouping** (Sec. 5.3) -- the resulting 1Q moves are grouped
   into AOD-compatible collective moves by the distance-aware greedy
   algorithm in :func:`repro.hardware.moves.group_moves`.

The *non-storage* variant additionally de-clusters leftover co-located
pairs whose qubits no longer interact (with storage they simply retire to
the storage zone; without it one of them must step aside, or the Rydberg
blockade would execute an unwanted CZ).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any

from ..hardware.geometry import Site, Zone, ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.moves import CollMove, Move, group_moves

try:  # optional: vectorised site search (CI's minimal env lacks numpy)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the scalar fallback
    _np = None

#: Below this many zone sites the plain Python scan wins; above it the
#: numpy pre-filter pays for itself.
_VECTOR_MIN_SITES = 64


class RoutingError(RuntimeError):
    """Raised when no legal target site exists for a required move."""


#: Router labels (Sec. 5.2).
STATIC = "static"
MOBILE = "mobile"
UNDECIDED = "undecided"


@dataclass
class RoutedStage:
    """Routing outcome for one stage transition.

    Attributes:
        moves: The decided 1Q movements (unordered).
        labels: Final label per interacting qubit (static/mobile/undecided).
        targets: Destination site per moved qubit.
    """

    moves: list[Move] = field(default_factory=list)
    labels: dict[int, str] = field(default_factory=dict)
    targets: dict[int, Site] = field(default_factory=dict)

    @property
    def num_moves(self) -> int:
        """Number of 1Q movements."""
        return len(self.moves)


class ContinuousRouter:
    """Stateless-per-stage router over a zoned architecture.

    Args:
        architecture: The machine floor plan.
        use_storage: Park non-interacting qubits in the storage zone.
        rng: Source for the case-4 random mobile choice (Sec. 5.2 step 2,
            case 4 picks the mobile qubit of an in-compute pair randomly).
    """

    def __init__(
        self,
        architecture: ZonedArchitecture,
        use_storage: bool,
        rng: random.Random | None = None,
    ) -> None:
        if use_storage and not architecture.has_storage:
            raise ValueError("use_storage=True requires a storage zone")
        self._arch = architecture
        self._use_storage = use_storage
        self._rng = rng or random.Random(0)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def route_stage(
        self, layout: Layout, pairs: list[tuple[int, int]]
    ) -> RoutedStage:
        """Decide the 1Q movements realising ``pairs`` from ``layout``.

        Args:
            layout: Current placement (not modified).
            pairs: Interacting qubit pairs of the next stage; pairwise
                disjoint.

        Returns:
            The routed stage; applying its moves to ``layout`` yields a
            placement where every pair is co-located on a computation-zone
            site and no unwanted co-location remains.
        """
        self._check_pairs(layout, pairs)
        plan = _StagePlan(self._arch, layout, pairs)
        if self._use_storage:
            self._park_noninteracting(plan)
        else:
            self._decluster(plan)
        self._label_interacting(plan)
        self._resolve_undecided(plan)
        return plan.build_result()

    # ------------------------------------------------------------------
    # Step 1 (with storage): park non-interacting qubits
    # ------------------------------------------------------------------

    def _park_noninteracting(self, plan: "_StagePlan") -> None:
        resting = [
            q
            for q in plan.layout.qubits
            if q not in plan.interacting
            and plan.layout.zone_of(q) is Zone.COMPUTE
        ]
        # Descending y: qubits farther from the storage zone pick first
        # (Sec. 5.2 step 1), which shortens the total travel.
        resting.sort(key=lambda q: (-plan.layout.position_of(q)[1], q))
        for q in resting:
            plan.depart(q)
            site = plan.nearest_empty(
                plan.layout.position_of(q), Zone.STORAGE
            )
            if site is None:
                raise RoutingError(
                    f"storage zone full: cannot park qubit {q}"
                )
            plan.arrive(q, site)

    # ------------------------------------------------------------------
    # Step 1' (non-storage): split leftover co-located non-pairs
    # ------------------------------------------------------------------

    def _decluster(self, plan: "_StagePlan") -> None:
        handled: set[Site] = set()
        for q in plan.layout.qubits:
            site = plan.layout.site_of(q)
            if site in handled:
                continue
            tenants = sorted(plan.layout.occupants(site))
            if len(tenants) < 2:
                continue
            handled.add(site)
            idle = [t for t in tenants if t not in plan.interacting]
            if len(idle) < 2:
                # At most one idle co-tenant: the interacting tenant(s)
                # will be forced away (or stay as a new pair) by step 2.
                continue
            # Both tenants idle this stage: keep the first, step the
            # second aside to the nearest empty computation site.
            for mover in idle[1:]:
                plan.depart(mover)
                target = plan.nearest_empty(
                    plan.layout.position_of(mover), Zone.COMPUTE
                )
                if target is None:
                    raise RoutingError(
                        f"computation zone full: cannot de-cluster {mover}"
                    )
                plan.arrive(mover, target)

    # ------------------------------------------------------------------
    # Step 2: label interacting qubits (Fig. 4 case analysis)
    # ------------------------------------------------------------------

    def _label_interacting(self, plan: "_StagePlan") -> None:
        for a, b in plan.ordered_pairs:
            zone_a = plan.layout.zone_of(a)
            zone_b = plan.layout.zone_of(b)
            if zone_a is Zone.STORAGE and zone_b is Zone.STORAGE:
                self._case_both_storage(plan, a, b)
            elif zone_a is Zone.STORAGE or zone_b is Zone.STORAGE:
                inside = a if zone_a is Zone.STORAGE else b
                outside = b if zone_a is Zone.STORAGE else a
                self._case_one_storage(plan, inside, outside)
            else:
                self._case_both_compute(plan, a, b)

    def _case_both_storage(self, plan: "_StagePlan", a: int, b: int) -> None:
        """Fig. 4(b): both partners start in storage.

        One becomes ``undecided`` (its interaction site is fixed in step 3),
        the other ``mobile`` following it.  We pick the partner nearer the
        computation zone (larger y) as the undecided anchor so the site
        search starts closer to the boundary.
        """
        ya = plan.layout.position_of(a)[1]
        yb = plan.layout.position_of(b)[1]
        anchor, follower = (a, b) if (ya, -a) >= (yb, -b) else (b, a)
        plan.mark(anchor, UNDECIDED)
        plan.mark(follower, MOBILE)
        plan.follow(anchor, follower)

    def _case_one_storage(
        self, plan: "_StagePlan", inside: int, outside: int
    ) -> None:
        """Fig. 4(c): one partner in storage, one in computation.

        The storage-resident partner is always mobile (it must leave
        storage anyway).  The computation-resident partner stays static if
        its site is unblocked (case 1), else goes undecided (case 2).
        """
        plan.mark(inside, MOBILE)
        if plan.blocked(outside):
            plan.mark(outside, UNDECIDED)
            plan.follow(outside, inside)
        else:
            plan.mark(outside, STATIC)
            plan.arrive(inside, plan.layout.site_of(outside))

    def _case_both_compute(self, plan: "_StagePlan", a: int, b: int) -> None:
        """Fig. 4(d): both partners already in the computation zone.

        Already co-located pairs stay put (both static).  Otherwise one
        partner is chosen mobile at random; the other stays static when
        its site is unblocked (case 1) or goes undecided (case 2).
        """
        if plan.layout.site_of(a) == plan.layout.site_of(b):
            plan.mark(a, STATIC)
            plan.mark(b, STATIC)
            return
        mobile = self._rng.choice((a, b))
        stayer = b if mobile == a else a
        plan.mark(mobile, MOBILE)
        if plan.blocked(stayer):
            plan.mark(stayer, UNDECIDED)
            plan.follow(stayer, mobile)
        else:
            plan.mark(stayer, STATIC)
            plan.arrive(mobile, plan.layout.site_of(stayer))

    # ------------------------------------------------------------------
    # Step 3: fix targets for undecided qubits
    # ------------------------------------------------------------------

    def _resolve_undecided(self, plan: "_StagePlan") -> None:
        for anchor in plan.undecided_order:
            site = plan.nearest_empty(
                plan.layout.position_of(anchor), Zone.COMPUTE
            )
            if site is None:
                raise RoutingError(
                    f"computation zone full: cannot place qubit {anchor}"
                )
            plan.arrive(anchor, site)
            for follower in plan.followers_of(anchor):
                plan.arrive(follower, site)

    # ------------------------------------------------------------------
    # Validation of inputs
    # ------------------------------------------------------------------

    def _check_pairs(
        self, layout: Layout, pairs: list[tuple[int, int]]
    ) -> None:
        seen: set[int] = set()
        placed = set(layout.qubits)
        for a, b in pairs:
            if a == b:
                raise ValueError(f"pair ({a},{b}) is degenerate")
            for q in (a, b):
                if q in seen:
                    raise ValueError(f"qubit {q} appears in two pairs")
                if q not in placed:
                    raise ValueError(f"qubit {q} is not placed")
                seen.add(q)
        if not self._use_storage:
            for q in placed:
                if layout.zone_of(q) is Zone.STORAGE:
                    raise ValueError(
                        "non-storage routing with a qubit in storage"
                    )


class _StagePlan:
    """Mutable working state of one stage-routing pass."""

    def __init__(
        self,
        architecture: ZonedArchitecture,
        layout: Layout,
        pairs: list[tuple[int, int]],
    ) -> None:
        self.arch = architecture
        self.layout = layout
        self.ordered_pairs = sorted(
            (min(a, b), max(a, b)) for a, b in pairs
        )
        self.interacting: set[int] = {q for pair in pairs for q in pair}
        self.labels: dict[int, str] = {}
        self.targets: dict[int, Site] = {}
        self._followers: dict[int, list[int]] = {}
        self.undecided_order: list[int] = []
        # Planned end-state occupancy; updated as departures/arrivals are
        # decided.  Transient over-occupancy is fine -- interacting
        # co-tenants that have not been labelled yet are guaranteed to
        # depart later (they can never turn static next to a static).
        self._end_occ: dict[Site, set[int]] = {}
        for q in layout.qubits:
            self._end_occ.setdefault(layout.site_of(q), set()).add(q)
        # Vectorised-search state, built lazily per zone on first use:
        # a boolean planned-free mask aligned with sites_in(zone) and a
        # site -> array-index map.  Kept in sync by depart()/arrive().
        self._free_masks: dict[Zone, Any] = {}
        self._site_pos: dict[Zone, dict[Site, int]] = {}

    # -- bookkeeping -----------------------------------------------------

    def depart(self, qubit: int) -> None:
        """Remove ``qubit`` from its current site in the planned end state."""
        site = self.layout.site_of(qubit)
        occupants = self._end_occ[site]
        occupants.discard(qubit)
        if not occupants:
            self._mark_free(site, True)

    def arrive(self, qubit: int, site: Site) -> None:
        """Fix ``site`` as ``qubit``'s destination."""
        self.targets[qubit] = site
        self._end_occ.setdefault(site, set()).add(qubit)
        self._mark_free(site, False)

    def mark(self, qubit: int, label: str) -> None:
        """Assign a routing label; mobile/undecided qubits depart."""
        self.labels[qubit] = label
        if label in (MOBILE, UNDECIDED):
            self.depart(qubit)
        if label == UNDECIDED:
            self.undecided_order.append(qubit)

    def follow(self, anchor: int, follower: int) -> None:
        """Route ``follower`` to wherever ``anchor`` ends up (step 3)."""
        self._followers.setdefault(anchor, []).append(follower)

    def followers_of(self, anchor: int) -> list[int]:
        """Mobile partners awaiting ``anchor``'s site."""
        return self._followers.get(anchor, [])

    def blocked(self, qubit: int) -> bool:
        """Is ``qubit``'s site unavailable for it to stay static?

        Any remaining co-occupant blocks except an interacting qubit that
        has not been labelled yet (such a qubit is guaranteed to move away:
        it can never become static on a site that already has one).
        """
        site = self.layout.site_of(qubit)
        for other in self._end_occ.get(site, ()):  # departed are gone
            if other == qubit:
                continue
            if other in self.interacting and other not in self.labels:
                continue
            return True
        return False

    def _mark_free(self, site: Site, free: bool) -> None:
        """Sync the zone's planned-free mask, if it has been built."""
        mask = self._free_masks.get(site.zone)
        if mask is not None:
            index = self._site_pos[site.zone].get(site)
            if index is not None:
                mask[index] = free

    def _free_mask(self, zone: Zone):
        """Boolean planned-free mask aligned with ``sites_in(zone)``."""
        mask = self._free_masks.get(zone)
        if mask is None:
            sites = self.arch.sites_in(zone)
            positions = {site: i for i, site in enumerate(sites)}
            mask = _np.ones(len(sites), dtype=bool)
            for site, occupants in self._end_occ.items():
                if occupants and site.zone is zone:
                    index = positions.get(site)
                    if index is not None:
                        mask[index] = False
            self._site_pos[zone] = positions
            self._free_masks[zone] = mask
        return mask

    def nearest_empty(
        self, position: tuple[float, float], zone: Zone
    ) -> Site | None:
        """Closest planned-empty site of ``zone`` to ``position``.

        Euclidean distance; ties prefer the same column, then low row/col.

        Large zones take a vectorised path: squared distances over the
        architecture's cached coordinate arrays shrink the field to the
        near-tie candidates, and the historical ``math.hypot`` key picks
        among those -- so the winning site is bit-identical to the scalar
        scan's, numpy or not.
        """
        px, py = position
        sites = self.arch.sites_in(zone)
        arrays = (
            self.arch.site_arrays(zone)
            if _np is not None and len(sites) >= _VECTOR_MIN_SITES
            else None
        )
        if arrays is not None:
            xs, ys = arrays
            dx = xs - px
            dy = ys - py
            dist_sq = dx * dx + dy * dy
            dist_sq[~self._free_mask(zone)] = _np.inf
            best_sq = dist_sq.min()
            if not _np.isfinite(best_sq):
                return None
            # Keep every candidate whose squared distance could round to
            # the same hypot as the minimum; exact keys decide below.
            cutoff = best_sq * (1.0 + 1e-9)
            candidates = _np.flatnonzero(dist_sq <= cutoff)
            pool = [sites[int(i)] for i in candidates]
        else:
            pool = [s for s in sites if not self._end_occ.get(s)]
        best_key: tuple | None = None
        best_site: Site | None = None
        for site in pool:
            dist = math.hypot(site.x - px, site.y - py)
            key = (dist, abs(site.x - px), site.row, site.col)
            if best_key is None or key < best_key:
                best_key = key
                best_site = site
        return best_site

    # -- result ------------------------------------------------------------

    def build_result(self) -> RoutedStage:
        moves: list[Move] = []
        for qubit in sorted(self.targets):
            source = self.layout.site_of(qubit)
            destination = self.targets[qubit]
            if source != destination:
                moves.append(Move(qubit, source, destination))
        return RoutedStage(
            moves=moves, labels=dict(self.labels), targets=dict(self.targets)
        )


def route_and_group(
    router: ContinuousRouter,
    layout: Layout,
    pairs: list[tuple[int, int]],
    distance_aware: bool = True,
) -> tuple[RoutedStage, list[CollMove]]:
    """Route a stage and group its moves into CollMoves (Sec. 5.2 + 5.3)."""
    routed = router.route_stage(layout, pairs)
    groups = group_moves(routed.moves, distance_aware=distance_aware)
    return routed, groups


__all__ = [
    "ContinuousRouter",
    "MOBILE",
    "RoutedStage",
    "RoutingError",
    "STATIC",
    "UNDECIDED",
    "route_and_group",
]
