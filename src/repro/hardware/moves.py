"""Qubit movements and AOD-compatible collective moves.

A :class:`Move` is one qubit's site-to-site relocation.  A
:class:`CollMove` is a set of moves executed together by a single crossed
2D AOD array; the AOD can stretch and contract but its rows and columns
must move in tandem and may never cross (Sec. 2.1), which induces the
pairwise *conflict* relation of the paper's Fig. 5:

two moves conflict iff the relative order of their x coordinates (or of
their y coordinates) differs between start and end -- where "order"
includes ties, since two traps can only share a coordinate if they ride
the same AOD row/column, and a single row/column cannot split or merge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .geometry import Site, Zone
from .params import HardwareParams

#: Coordinates closer than this are the same AOD row/column (metres).
_COORD_EPS = 1e-9


def _sign(delta: float) -> int:
    if delta > _COORD_EPS:
        return 1
    if delta < -_COORD_EPS:
        return -1
    return 0


@dataclass(frozen=True)
class Move:
    """A single-qubit movement between two sites.

    Attributes:
        qubit: The moved qubit.
        source: Site the qubit leaves.
        destination: Site the qubit arrives at.
    """

    qubit: int
    source: Site
    destination: Site

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError(f"move of qubit {self.qubit} goes nowhere")

    @property
    def distance(self) -> float:
        """Euclidean travel distance (metres)."""
        return math.hypot(
            self.destination.x - self.source.x,
            self.destination.y - self.source.y,
        )

    def duration(self, params: HardwareParams) -> float:
        """Movement time under the acceleration bound (seconds)."""
        return params.move_duration(self.distance)

    @property
    def into_storage(self) -> bool:
        """True for a compute -> storage move (a ZA "move-in")."""
        return (
            self.source.zone is Zone.COMPUTE
            and self.destination.zone is Zone.STORAGE
        )

    @property
    def out_of_storage(self) -> bool:
        """True for a storage -> compute move (a ZA "move-out")."""
        return (
            self.source.zone is Zone.STORAGE
            and self.destination.zone is Zone.COMPUTE
        )

    def __str__(self) -> str:
        return f"q{self.qubit}: {self.source} -> {self.destination}"


def moves_conflict(first: Move, second: Move) -> bool:
    """Fig. 5 conflict predicate: can these 1Q moves share one AOD?

    They cannot when the order of the two qubits along x (or along y)
    changes between start and end, including order-with-ties: equal
    coordinates must stay equal, strict order must stay strict.
    """
    if _sign(first.source.x - second.source.x) != _sign(
        first.destination.x - second.destination.x
    ):
        return True
    if _sign(first.source.y - second.source.y) != _sign(
        first.destination.y - second.destination.y
    ):
        return True
    return False


@dataclass
class CollMove:
    """A collective movement: conflict-free 1Q moves on one AOD array.

    Attributes:
        moves: Member moves; pairwise non-conflicting.
        aod_index: Which AOD array executes the move (assigned by the
            Coll-Move scheduler; 0 for single-AOD machines).
    """

    moves: list[Move] = field(default_factory=list)
    aod_index: int = 0

    @property
    def num_moves(self) -> int:
        """Number of member 1Q moves."""
        return len(self.moves)

    @property
    def qubits(self) -> tuple[int, ...]:
        """Moved qubits, ascending."""
        return tuple(sorted(m.qubit for m in self.moves))

    @property
    def max_distance(self) -> float:
        """Longest member travel distance; sets the movement time."""
        return max((m.distance for m in self.moves), default=0.0)

    def move_duration(self, params: HardwareParams) -> float:
        """Travel time of the collective move (seconds, transfers excluded)."""
        return params.move_duration(self.max_distance)

    @property
    def num_into_storage(self) -> int:
        """Member moves entering the storage zone (``n_in`` in Sec. 6.1)."""
        return sum(1 for m in self.moves if m.into_storage)

    @property
    def num_out_of_storage(self) -> int:
        """Member moves leaving the storage zone (``n_out`` in Sec. 6.1)."""
        return sum(1 for m in self.moves if m.out_of_storage)

    def accepts(self, move: Move) -> bool:
        """True when ``move`` conflicts with no member move."""
        return all(not moves_conflict(move, member) for member in self.moves)

    def validate(self) -> None:
        """Assert pairwise compatibility and distinct qubits."""
        qubits = [m.qubit for m in self.moves]
        assert len(set(qubits)) == len(qubits), "duplicate qubit in CollMove"
        for i, a in enumerate(self.moves):
            for b in self.moves[i + 1:]:
                assert not moves_conflict(a, b), f"conflict: {a} vs {b}"

    def __iter__(self):
        return iter(self.moves)

    def __len__(self) -> int:
        return len(self.moves)


def group_moves(
    moves: list[Move],
    distance_aware: bool = True,
) -> list[CollMove]:
    """Greedy grouping of 1Q moves into CollMoves (Sec. 5.3).

    With ``distance_aware=True`` (PowerMove's scheme) moves are first
    sorted by ascending travel distance, which clusters similar-length
    moves so the per-group max distance -- and hence movement time -- stays
    balanced.  With ``False`` the input order is kept (FIFO), which is the
    ablation baseline.

    Each move goes to the first existing group it does not conflict with,
    else it opens a new group.
    """
    ordered = list(moves)
    if distance_aware:
        ordered.sort(key=lambda m: (m.distance, m.qubit))
    groups: list[CollMove] = []
    for move in ordered:
        for group in groups:
            if group.accepts(move):
                group.moves.append(move)
                break
        else:
            groups.append(CollMove(moves=[move]))
    return groups


__all__ = ["CollMove", "Move", "group_moves", "moves_conflict"]
