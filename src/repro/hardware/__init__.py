"""Neutral-atom hardware model: parameters, geometry, layouts, movements."""

from .geometry import Site, Zone, ZonedArchitecture
from .kinematics import (
    BangBangProfile,
    MoveWaveform,
    PaperProfile,
    coll_move_waveforms,
    move_waveform,
    sample_profile,
)
from .layout import Layout, LayoutError
from .moves import CollMove, Move, group_moves, moves_conflict
from .params import DEFAULT_PARAMS, UM, US, HardwareParams

__all__ = [
    "BangBangProfile",
    "CollMove",
    "DEFAULT_PARAMS",
    "HardwareParams",
    "Layout",
    "LayoutError",
    "Move",
    "MoveWaveform",
    "PaperProfile",
    "Site",
    "UM",
    "US",
    "Zone",
    "ZonedArchitecture",
    "coll_move_waveforms",
    "group_moves",
    "move_waveform",
    "moves_conflict",
    "sample_profile",
]
