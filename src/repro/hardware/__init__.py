"""Neutral-atom hardware model: parameters, geometry, layouts, movements."""

from .catalog import (
    ARCHITECTURES,
    ArchitectureCatalog,
    ArchitectureError,
    ArchitectureSpec,
    available_architectures,
    build_architecture,
    get_architecture,
)
from .geometry import Site, Zone, ZonedArchitecture
from .kinematics import (
    BangBangProfile,
    MoveWaveform,
    PaperProfile,
    coll_move_waveforms,
    move_waveform,
    sample_profile,
)
from .layout import Layout, LayoutError
from .moves import CollMove, Move, group_moves, moves_conflict
from .params import DEFAULT_PARAMS, UM, US, HardwareParams

__all__ = [
    "ARCHITECTURES",
    "ArchitectureCatalog",
    "ArchitectureError",
    "ArchitectureSpec",
    "BangBangProfile",
    "CollMove",
    "DEFAULT_PARAMS",
    "HardwareParams",
    "Layout",
    "LayoutError",
    "Move",
    "MoveWaveform",
    "PaperProfile",
    "Site",
    "UM",
    "US",
    "Zone",
    "ZonedArchitecture",
    "available_architectures",
    "build_architecture",
    "coll_move_waveforms",
    "get_architecture",
    "move_waveform",
    "moves_conflict",
    "sample_profile",
]
