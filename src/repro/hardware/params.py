"""Hardware parameters of the neutral-atom machine (Table 1 of the paper).

All quantities are SI (metres, seconds).  The movement-time law follows the
paper's Table 1 examples -- 100 us for 27.5 um and 200 us for 110 um -- both
of which satisfy ``t = sqrt(d / a)`` with the maximum fidelity-preserving
acceleration ``a = 2750 m/s^2`` reported by Bluvstein et al.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: One micrometre in metres (for readable geometry literals).
UM = 1e-6

#: One microsecond in seconds.
US = 1e-6


@dataclass(frozen=True)
class HardwareParams:
    """Fidelity and duration constants of the NAQC (paper Table 1).

    Attributes:
        fidelity_1q: One-qubit Raman rotation fidelity (99.99%).
        fidelity_cz: Two-qubit CZ gate fidelity (99.5%).
        fidelity_excitation: Fidelity retained by a *non-interacting* qubit
            sitting in the computation zone during a Rydberg excitation
            (99.75%).
        fidelity_transfer: SLM<->AOD trap transfer fidelity (99.9%).
        duration_1q: One-qubit gate duration (1 us).
        duration_cz: CZ / Rydberg excitation duration (270 ns).
        duration_transfer: Trap transfer duration (15 us).
        acceleration: Maximum movement acceleration preserving fidelity
            (2750 m/s^2).
        t2: Qubit coherence time (1.5 s); storage-zone dwell does not count
            against it.
        site_pitch: Minimum spacing between neighbouring sites (15 um).
        zone_gap: Spatial separation between the computation and storage
            zones (30 um).
        rydberg_radius: Interaction radius for the CZ blockade (~6 um);
            informational, co-location is modelled at site granularity.
        min_noninteracting_spacing: Minimum distance between qubits that
            must *not* interact during an excitation (10 um); the 15 um
            site pitch satisfies it by construction.
    """

    fidelity_1q: float = 0.9999
    fidelity_cz: float = 0.995
    fidelity_excitation: float = 0.9975
    fidelity_transfer: float = 0.999
    duration_1q: float = 1.0 * US
    duration_cz: float = 270e-9
    duration_transfer: float = 15.0 * US
    acceleration: float = 2750.0
    t2: float = 1.5
    site_pitch: float = 15.0 * UM
    zone_gap: float = 30.0 * UM
    rydberg_radius: float = 6.0 * UM
    min_noninteracting_spacing: float = 10.0 * UM

    def __post_init__(self) -> None:
        for name in (
            "fidelity_1q",
            "fidelity_cz",
            "fidelity_excitation",
            "fidelity_transfer",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        for name in (
            "duration_1q",
            "duration_cz",
            "duration_transfer",
            "acceleration",
            "t2",
            "site_pitch",
            "zone_gap",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.site_pitch < self.min_noninteracting_spacing:
            raise ValueError(
                "site pitch below the minimum non-interacting spacing"
            )

    def move_duration(self, distance: float) -> float:
        """Wall-clock time to move a qubit ``distance`` metres.

        Uses the paper's law ``t = sqrt(d / a)`` (Table 1: 27.5 um -> 100 us,
        110 um -> 200 us).  Zero distance costs zero time.
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        if distance == 0.0:
            return 0.0
        return math.sqrt(distance / self.acceleration)


#: Default parameter set used across the library (paper Table 1 values).
DEFAULT_PARAMS = HardwareParams()


__all__ = ["DEFAULT_PARAMS", "HardwareParams", "UM", "US"]
