"""Qubit layouts: the qubit -> site assignment with occupancy rules.

The paper's site-level abstraction (Sec. 5.1): a site can hold *two* qubits
only while they form an interacting CZ pair, *one* non-interacting qubit, or
be empty.  :class:`Layout` enforces the capacity bound; whether co-tenants
actually interact is checked per Rydberg stage by the program validator.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping

from .geometry import Site, Zone, ZonedArchitecture


class LayoutError(ValueError):
    """Raised when an operation would violate layout invariants."""


class Layout:
    """Mutable mapping from qubits to sites on one machine.

    Example:
        >>> arch = ZonedArchitecture.for_qubits(4, with_storage=True)
        >>> layout = Layout.row_major(arch, 4, zone=Zone.STORAGE)
        >>> layout.zone_of(0)
        <Zone.STORAGE: 'storage'>
    """

    MAX_OCCUPANCY = 2

    def __init__(
        self, architecture: ZonedArchitecture, mapping: Mapping[int, Site]
    ) -> None:
        self._arch = architecture
        self._sites: dict[int, Site] = {}
        self._occupants: dict[Site, set[int]] = {}
        for qubit, site in mapping.items():
            self._place(qubit, site)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def row_major(
        cls,
        architecture: ZonedArchitecture,
        num_qubits: int,
        zone: Zone = Zone.COMPUTE,
    ) -> "Layout":
        """Place qubits 0..n-1 one per site in row-major site order."""
        sites = architecture.sites_in(zone)
        if num_qubits > len(sites):
            raise LayoutError(
                f"{num_qubits} qubits do not fit in {len(sites)} "
                f"{zone.value} sites"
            )
        return cls(architecture, {q: sites[q] for q in range(num_qubits)})

    @classmethod
    def from_permutation(
        cls,
        architecture: ZonedArchitecture,
        permutation: Iterable[int],
        zone: Zone = Zone.COMPUTE,
    ) -> "Layout":
        """Place qubit ``permutation[i]`` on the i-th site of ``zone``."""
        sites = architecture.sites_in(zone)
        perm = list(permutation)
        if len(perm) > len(sites):
            raise LayoutError("permutation longer than zone capacity")
        if len(set(perm)) != len(perm):
            raise LayoutError("permutation contains duplicates")
        return cls(architecture, {q: sites[i] for i, q in enumerate(perm)})

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------

    @property
    def architecture(self) -> ZonedArchitecture:
        """The machine this layout lives on."""
        return self._arch

    @property
    def qubits(self) -> tuple[int, ...]:
        """All placed qubits, ascending."""
        return tuple(sorted(self._sites))

    @property
    def num_qubits(self) -> int:
        """Number of placed qubits."""
        return len(self._sites)

    def site_of(self, qubit: int) -> Site:
        """Site currently holding ``qubit``."""
        try:
            return self._sites[qubit]
        except KeyError as exc:
            raise LayoutError(f"qubit {qubit} is not placed") from exc

    def zone_of(self, qubit: int) -> Zone:
        """Zone currently holding ``qubit``."""
        return self.site_of(qubit).zone

    def position_of(self, qubit: int) -> tuple[float, float]:
        """(x, y) of ``qubit`` in metres."""
        return self.site_of(qubit).position

    def occupants(self, site: Site) -> frozenset[int]:
        """Qubits currently on ``site``."""
        return frozenset(self._occupants.get(site, ()))

    def co_tenants(self, qubit: int) -> frozenset[int]:
        """Other qubits sharing ``qubit``'s site."""
        return self.occupants(self.site_of(qubit)) - {qubit}

    def is_empty(self, site: Site) -> bool:
        """True when no qubit sits on ``site``."""
        return not self._occupants.get(site)

    def occupied_sites(self) -> tuple[Site, ...]:
        """All sites holding at least one qubit."""
        return tuple(site for site, occ in self._occupants.items() if occ)

    def qubits_in_zone(self, zone: Zone) -> tuple[int, ...]:
        """Qubits currently resident in ``zone``, ascending."""
        return tuple(
            sorted(q for q, s in self._sites.items() if s.zone is zone)
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _place(self, qubit: int, site: Site) -> None:
        if not self._arch.contains(site):
            raise LayoutError(f"site {site} not on this machine")
        if qubit in self._sites:
            raise LayoutError(f"qubit {qubit} already placed")
        occupants = self._occupants.setdefault(site, set())
        if len(occupants) >= self.MAX_OCCUPANCY:
            raise LayoutError(f"site {site} already holds two qubits")
        occupants.add(qubit)
        self._sites[qubit] = site

    def move(self, qubit: int, destination: Site) -> None:
        """Relocate ``qubit``; destination occupancy must stay <= 2."""
        if not self._arch.contains(destination):
            raise LayoutError(f"site {destination} not on this machine")
        source = self.site_of(qubit)
        if source == destination:
            return
        occupants = self._occupants.setdefault(destination, set())
        if len(occupants) >= self.MAX_OCCUPANCY:
            raise LayoutError(
                f"cannot move qubit {qubit}: site {destination} is full"
            )
        self._occupants[source].discard(qubit)
        occupants.add(qubit)
        self._sites[qubit] = destination

    def apply_moves(self, moves: Iterable["object"]) -> None:
        """Apply a batch of moves atomically (departures before arrivals).

        Sequential :meth:`move` calls can spuriously overflow a site that a
        later move of the same batch vacates; this helper first removes all
        movers, then re-places them, validating sources, duplicate movers
        and destination capacity.  ``moves`` must expose ``qubit``,
        ``source`` and ``destination`` attributes (:class:`repro.hardware.
        moves.Move` does).
        """
        batch = list(moves)
        seen: set[int] = set()
        for move in batch:
            if move.qubit in seen:
                raise LayoutError(f"qubit {move.qubit} moved twice in batch")
            seen.add(move.qubit)
            actual = self.site_of(move.qubit)
            if actual != move.source:
                raise LayoutError(
                    f"move source mismatch for qubit {move.qubit}: "
                    f"at {actual}, move says {move.source}"
                )
        for move in batch:
            self._occupants[self._sites.pop(move.qubit)].discard(move.qubit)
        for move in batch:
            self._place(move.qubit, move.destination)

    def copy(self) -> "Layout":
        """Deep copy of the assignment."""
        return Layout(self._arch, dict(self._sites))

    # ------------------------------------------------------------------
    # Search helpers used by the routers
    # ------------------------------------------------------------------

    def nearest_empty_site(
        self,
        position: tuple[float, float],
        zone: Zone,
        exclude: Iterable[Site] = (),
        predicate: Callable[[Site], bool] | None = None,
    ) -> Site | None:
        """Closest empty site of ``zone`` to ``position``.

        Distance is Euclidean; ties break by preferring the same column
        (smaller |dx|), then by (row, col) for determinism.  ``exclude``
        marks sites that are reserved even if currently empty.

        Returns None when the zone has no available empty site.
        """
        banned = set(exclude)
        best: tuple[float, float, int, int] | None = None
        best_site: Site | None = None
        px, py = position
        for site in self._arch.sites_in(zone):
            if site in banned or not self.is_empty(site):
                continue
            if predicate is not None and not predicate(site):
                continue
            dist = math.hypot(site.x - px, site.y - py)
            key = (dist, abs(site.x - px), site.row, site.col)
            if best is None or key < best:
                best = key
                best_site = site
        return best_site

    # ------------------------------------------------------------------
    # Validation / dunder
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Re-check all occupancy invariants (cheap; used in tests)."""
        seen: dict[Site, int] = {}
        for qubit, site in self._sites.items():
            assert self._arch.contains(site), f"qubit {qubit} off-machine"
            seen[site] = seen.get(site, 0) + 1
        for site, count in seen.items():
            assert count <= self.MAX_OCCUPANCY, f"site {site} over-occupied"
            assert self._occupants[site] == {
                q for q, s in self._sites.items() if s == site
            }

    def as_dict(self) -> dict[int, Site]:
        """Snapshot of the mapping (new dict, shared immutable sites)."""
        return dict(self._sites)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._sites == other._sites

    def __repr__(self) -> str:
        return f"Layout({len(self._sites)} qubits on {self._arch!r})"


__all__ = ["Layout", "LayoutError"]
