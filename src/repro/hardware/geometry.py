"""Zoned-architecture geometry: zones, sites and the machine floor plan.

The machine follows the paper's evaluation setup (Sec. 7.1): a computation
zone of ``ceil(sqrt(n)) x ceil(sqrt(n))`` sites, an empty 30 um inter-zone
gap, and a storage zone of ``2*ceil(sqrt(n)) x ceil(sqrt(n))`` sites, all on
a 15 um pitch.

Global coordinates: x grows to the right, y grows upward.  The storage zone
sits *below* the computation zone (as drawn in the paper's figures), with
its top row at ``y = 0`` and the computation zone starting at
``y = zone_gap``.  "Moving down into storage" therefore decreases y.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from .params import DEFAULT_PARAMS, HardwareParams, UM

try:  # optional: vectorised coordinate queries (CI's minimal env lacks it)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the scalar fallback
    _np = None


class Zone(str, Enum):
    """The two functional zones of the architecture."""

    COMPUTE = "compute"
    STORAGE = "storage"


@dataclass(frozen=True)
class Site:
    """One trap site of the lattice.

    Attributes:
        zone: Which zone the site belongs to.
        col: Column index within the zone (0-based, left to right).
        row: Row index within the zone (0-based, *bottom to top* for the
            computation zone, *top to bottom* for the storage zone so that
            storage row 0 is the row nearest the computation zone).
        x: Global x coordinate (metres).
        y: Global y coordinate (metres).
    """

    zone: Zone
    col: int
    row: int
    x: float
    y: float

    @property
    def position(self) -> tuple[float, float]:
        """(x, y) in metres."""
        return (self.x, self.y)

    def distance_to(self, other: "Site") -> float:
        """Euclidean distance to another site (metres)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __str__(self) -> str:
        return f"{self.zone.value}({self.col},{self.row})"


class ZonedArchitecture:
    """Floor plan of a zoned neutral-atom machine.

    Args:
        compute_cols: Columns of the computation zone.
        compute_rows: Rows of the computation zone.
        storage_cols: Columns of the storage zone (0 disables storage,
            modelling the architectures Enola targets).
        storage_rows: Rows of the storage zone.
        num_aods: Number of independently steerable AOD arrays.
        params: Hardware constants (pitch and zone gap are read from here).
    """

    def __init__(
        self,
        compute_cols: int,
        compute_rows: int,
        storage_cols: int = 0,
        storage_rows: int = 0,
        num_aods: int = 1,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        if compute_cols <= 0 or compute_rows <= 0:
            raise ValueError("computation zone must have positive extent")
        if (storage_cols > 0) != (storage_rows > 0):
            raise ValueError(
                "storage zone must have both dimensions positive or both zero"
            )
        if num_aods < 1:
            raise ValueError("need at least one AOD array")
        self._params = params
        self._num_aods = num_aods
        self._compute_cols = compute_cols
        self._compute_rows = compute_rows
        self._storage_cols = storage_cols
        self._storage_rows = storage_rows

        pitch = params.site_pitch
        gap = params.zone_gap
        self._compute_sites: list[Site] = []
        for row in range(compute_rows):
            for col in range(compute_cols):
                self._compute_sites.append(
                    Site(Zone.COMPUTE, col, row, col * pitch, gap + row * pitch)
                )
        self._storage_sites: list[Site] = []
        for row in range(storage_rows):
            for col in range(storage_cols):
                self._storage_sites.append(
                    Site(Zone.STORAGE, col, row, col * pitch, -row * pitch)
                )
        self._index: dict[tuple[Zone, int, int], Site] = {
            (s.zone, s.col, s.row): s
            for s in self._compute_sites + self._storage_sites
        }
        self._site_arrays: dict[Zone, tuple] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_qubits(
        cls,
        num_qubits: int,
        with_storage: bool = True,
        num_aods: int = 1,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> "ZonedArchitecture":
        """Paper-default floor plan for an ``num_qubits``-qubit program.

        Computation zone ``ceil(sqrt(n))`` square; storage zone the same
        width and twice the height (Sec. 7.1).
        """
        if num_qubits <= 0:
            raise ValueError("need at least one qubit")
        side = math.isqrt(num_qubits)
        if side * side < num_qubits:
            side += 1
        if with_storage:
            return cls(side, side, side, 2 * side, num_aods, params)
        return cls(side, side, 0, 0, num_aods, params)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def params(self) -> HardwareParams:
        """Hardware constants in force for this machine."""
        return self._params

    @property
    def num_aods(self) -> int:
        """Number of independent AOD arrays."""
        return self._num_aods

    @property
    def has_storage(self) -> bool:
        """True when a storage zone exists."""
        return bool(self._storage_sites)

    @property
    def compute_sites(self) -> tuple[Site, ...]:
        """All computation-zone sites (row-major from the bottom row)."""
        return tuple(self._compute_sites)

    @property
    def storage_sites(self) -> tuple[Site, ...]:
        """All storage-zone sites (row 0 nearest the computation zone)."""
        return tuple(self._storage_sites)

    @property
    def all_sites(self) -> tuple[Site, ...]:
        """Every site of the machine."""
        return tuple(self._compute_sites + self._storage_sites)

    @property
    def num_sites(self) -> int:
        """Total number of sites."""
        return len(self._index)

    @property
    def compute_shape(self) -> tuple[int, int]:
        """(cols, rows) of the computation zone."""
        return (self._compute_cols, self._compute_rows)

    @property
    def storage_shape(self) -> tuple[int, int]:
        """(cols, rows) of the storage zone ((0, 0) when absent)."""
        return (self._storage_cols, self._storage_rows)

    def site(self, zone: Zone, col: int, row: int) -> Site:
        """Look up a site by zone-local indices."""
        try:
            return self._index[(zone, col, row)]
        except KeyError as exc:
            raise KeyError(f"no site {zone.value}({col},{row})") from exc

    def sites_in(self, zone: Zone) -> tuple[Site, ...]:
        """All sites of one zone."""
        if zone is Zone.COMPUTE:
            return self.compute_sites
        return self.storage_sites

    def contains(self, site: Site) -> bool:
        """True when ``site`` belongs to this machine."""
        return self._index.get((site.zone, site.col, site.row)) == site

    def site_arrays(self, zone: Zone):
        """Per-zone site coordinates as ``(xs, ys)`` numpy arrays.

        Aligned with :meth:`sites_in` order and cached on the (immutable)
        architecture, so batch geometry such as the router's
        nearest-empty-site search can run as array math instead of a
        per-site Python loop.  Returns ``None`` when numpy is not
        installed -- callers must keep a scalar fallback.
        """
        if _np is None:
            return None
        cached = self._site_arrays.get(zone)
        if cached is None:
            sites = self.sites_in(zone)
            cached = (
                _np.array([s.x for s in sites], dtype=float),
                _np.array([s.y for s in sites], dtype=float),
            )
            self._site_arrays[zone] = cached
        return cached

    # ------------------------------------------------------------------
    # Extents (for the Table 2 reproduction)
    # ------------------------------------------------------------------

    def zone_extent_um(self, zone: Zone) -> tuple[float, float]:
        """(width, height) of a zone in micrometres, paper-style.

        The paper quotes zone sizes as ``pitch * cols x pitch * rows`` (e.g.
        a 6x6-site compute zone is "90 x 90"), so extents are reported as
        site count times pitch.
        """
        pitch_um = self._params.site_pitch / UM
        if zone is Zone.COMPUTE:
            return (self._compute_cols * pitch_um, self._compute_rows * pitch_um)
        return (self._storage_cols * pitch_um, self._storage_rows * pitch_um)

    def inter_zone_extent_um(self) -> tuple[float, float]:
        """(width, height) of the inter-zone gap in micrometres."""
        pitch_um = self._params.site_pitch / UM
        return (self._compute_cols * pitch_um, self._params.zone_gap / UM)

    def __repr__(self) -> str:
        return (
            f"ZonedArchitecture(compute={self._compute_cols}x{self._compute_rows}, "
            f"storage={self._storage_cols}x{self._storage_rows}, "
            f"aods={self._num_aods})"
        )


__all__ = ["Site", "Zone", "ZonedArchitecture"]
