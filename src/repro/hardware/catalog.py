"""Named architecture catalog: floor-plan factories resolvable by name.

Everywhere a backend name is accepted -- :class:`~repro.engine.jobs.CompileJob`,
batch manifests, the ``--arch`` CLI option -- an *architecture* name can
now be given too.  Each catalog entry is an :class:`ArchitectureSpec`: a
name, a one-line description and a ``build(num_qubits, num_aods, params)``
factory returning the :class:`~repro.hardware.geometry.ZonedArchitecture`
sized for the workload.

The default entry, ``paper``, is exactly
:meth:`ZonedArchitecture.for_qubits` with storage -- the paper's Sec. 7.1
floor plan -- so a job without an ``arch`` field compiles bit-identically
to the historical path (the architecture pass only consults the catalog
when a name is set).

Listing and lookup mirror :class:`~repro.pipeline.registry.BackendRegistry`
(``repro architectures`` renders the catalog the way ``repro backends``
renders the registry).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

from .geometry import ZonedArchitecture
from .params import DEFAULT_PARAMS, HardwareParams


class ArchitectureError(ValueError):
    """Raised on unknown architecture names or bad catalog usage."""


@dataclass(frozen=True)
class ArchitectureSpec:
    """One named floor-plan family.

    Attributes:
        name: Catalog key (``paper``, ``no-storage``, ...).
        description: One-line summary for ``repro architectures``.
        build: ``(num_qubits, num_aods, params) -> ZonedArchitecture``
            factory sizing the machine for a workload.
    """

    name: str
    description: str
    build: Callable[[int, int, HardwareParams], ZonedArchitecture]


class ArchitectureCatalog:
    """Name -> :class:`ArchitectureSpec` mapping with registration order."""

    def __init__(self) -> None:
        self._specs: dict[str, ArchitectureSpec] = {}

    def register(
        self, spec: ArchitectureSpec, replace: bool = False
    ) -> None:
        """Add an entry; re-registration requires ``replace=True``."""
        if spec.name in self._specs and not replace:
            raise ArchitectureError(
                f"architecture {spec.name!r} already registered"
            )
        self._specs[spec.name] = spec

    def get(self, name: str) -> ArchitectureSpec:
        """Look up an entry; unknown names raise :class:`ArchitectureError`."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self._specs)
            raise ArchitectureError(
                f"unknown architecture {name!r}; known: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ArchitectureSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


def _side(num_qubits: int) -> int:
    """``ceil(sqrt(n))`` -- the paper's computation-zone edge length."""
    if num_qubits <= 0:
        raise ArchitectureError("need at least one qubit")
    side = math.isqrt(num_qubits)
    if side * side < num_qubits:
        side += 1
    return side


def _paper(
    num_qubits: int, num_aods: int, params: HardwareParams
) -> ZonedArchitecture:
    return ZonedArchitecture.for_qubits(
        num_qubits, with_storage=True, num_aods=num_aods, params=params
    )


def _no_storage(
    num_qubits: int, num_aods: int, params: HardwareParams
) -> ZonedArchitecture:
    return ZonedArchitecture.for_qubits(
        num_qubits, with_storage=False, num_aods=num_aods, params=params
    )


def _wide_storage(
    num_qubits: int, num_aods: int, params: HardwareParams
) -> ZonedArchitecture:
    side = _side(num_qubits)
    return ZonedArchitecture(
        side, side, 2 * side, 2 * side, num_aods, params
    )


def _multi_aod(
    num_qubits: int, num_aods: int, params: HardwareParams
) -> ZonedArchitecture:
    return ZonedArchitecture.for_qubits(
        num_qubits,
        with_storage=True,
        num_aods=max(num_aods, 4),
        params=params,
    )


#: The process-wide default catalog.
ARCHITECTURES = ArchitectureCatalog()


def _register_defaults(catalog: ArchitectureCatalog) -> None:
    catalog.register(
        ArchitectureSpec(
            name="paper",
            description=(
                "Paper Sec. 7.1 default: ceil(sqrt(n))-square compute "
                "zone plus a same-width, double-height storage zone"
            ),
            build=_paper,
        )
    )
    catalog.register(
        ArchitectureSpec(
            name="no-storage",
            description=(
                "Computation zone only (the machines Enola/Atomique "
                "target); storage-requiring backends are infeasible"
            ),
            build=_no_storage,
        )
    )
    catalog.register(
        ArchitectureSpec(
            name="wide-storage",
            description=(
                "Storage zone twice as wide as the compute zone (4x the "
                "paper's storage capacity)"
            ),
            build=_wide_storage,
        )
    )
    catalog.register(
        ArchitectureSpec(
            name="multi-aod",
            description=(
                "Paper floor plan with at least four independently "
                "steerable AOD arrays"
            ),
            build=_multi_aod,
        )
    )


_register_defaults(ARCHITECTURES)


def get_architecture(name: str) -> ArchitectureSpec:
    """Look up ``name`` in the default catalog."""
    return ARCHITECTURES.get(name)


def available_architectures() -> tuple[str, ...]:
    """Names registered in the default catalog, in registration order."""
    return ARCHITECTURES.names()


def build_architecture(
    name: str,
    num_qubits: int,
    num_aods: int = 1,
    params: HardwareParams = DEFAULT_PARAMS,
) -> ZonedArchitecture:
    """Build the named floor plan sized for ``num_qubits``."""
    return ARCHITECTURES.get(name).build(num_qubits, num_aods, params)


__all__ = [
    "ARCHITECTURES",
    "ArchitectureCatalog",
    "ArchitectureError",
    "ArchitectureSpec",
    "available_architectures",
    "build_architecture",
    "get_architecture",
]
