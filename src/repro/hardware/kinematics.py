"""Movement kinematics: velocity profiles and AOD control waveforms.

The fidelity-preserving constraint on neutral-atom transport is a bound
on acceleration (``a_max = 2750 m/s^2``, Sec. 2.1).  The time-optimal
profile under a pure acceleration bound is **bang-bang**: accelerate at
``+a_max`` over the first half of the path, decelerate at ``-a_max``
over the second, giving ``T_opt(d) = 2 * sqrt(d / a_max)``.

The paper's Table 1, however, quotes ``T = sqrt(d / a_max)`` (100 us for
27.5 um, 200 us for 110 um) -- a factor 2 *below* the bang-bang optimum,
which means the quoted constant cannot be the literal peak path
acceleration of the schedule; it is an effective calibration constant of
the experimentally validated timing law.  This module therefore provides
both and keeps the bookkeeping honest:

* :class:`BangBangProfile` -- the triangular-velocity profile whose peak
  acceleration *is* ``a_max`` (duration ``2 sqrt(d/a)``);
* :class:`PaperProfile` -- a smooth raised-cosine profile matched to the
  paper's ``sqrt(d/a)`` law (what the compiler's timing model uses); its
  true peak acceleration, ``2*pi*a``, is exposed for inspection rather
  than hidden.

Profiles can be sampled into time-stamped waypoint waveforms -- the form
an AOD frequency synthesiser would consume -- and sampled waveforms are
checked against their analytic peak values in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .moves import CollMove, Move
from .params import HardwareParams

try:  # optional: batch sampling (CI's minimal env lacks numpy)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the scalar fallback
    _np = None


@dataclass(frozen=True)
class ProfileSample:
    """One waveform sample.

    Attributes:
        time: Seconds since motion start.
        position: Metres along the straight-line path (0..distance).
        velocity: Metres/second along the path.
    """

    time: float
    position: float
    velocity: float


class BangBangProfile:
    """Time-optimal triangular velocity profile at the acceleration cap.

    Accelerate at ``+a`` to the midpoint, decelerate at ``-a`` to rest.
    Each half covers ``d/2`` from standstill, so ``d/2 = a t_half^2 / 2``
    gives ``t_half = sqrt(d/a)`` and total ``T = 2 sqrt(d/a)``.
    """

    def __init__(self, distance: float, acceleration: float) -> None:
        if distance < 0:
            raise ValueError("distance must be non-negative")
        if acceleration <= 0:
            raise ValueError("acceleration must be positive")
        self.distance = distance
        self.acceleration = acceleration
        self._t_half = math.sqrt(distance / acceleration)

    @property
    def duration(self) -> float:
        """Total travel time ``2 * sqrt(d / a)``."""
        return 2.0 * self._t_half

    @property
    def peak_velocity(self) -> float:
        """Velocity at the midpoint, ``a * T / 2``."""
        return self.acceleration * self.duration / 2.0

    def position_at(self, t: float) -> float:
        """Path position at time ``t`` (clamped to [0, duration])."""
        total = self.duration
        t = min(max(t, 0.0), total)
        half = total / 2.0
        a = self.acceleration
        if t <= half:
            return 0.5 * a * t * t
        remaining = total - t
        return self.distance - 0.5 * a * remaining * remaining

    def velocity_at(self, t: float) -> float:
        """Path velocity at time ``t`` (clamped to [0, duration])."""
        total = self.duration
        t = min(max(t, 0.0), total)
        half = total / 2.0
        a = self.acceleration
        if t <= half:
            return a * t
        return a * (total - t)

    def positions_at(self, times):
        """Batch :meth:`position_at` over an array of times.

        Array math under numpy, a scalar loop otherwise; both evaluate
        the same clamped piecewise formula.
        """
        if _np is None:
            return [self.position_at(t) for t in times]
        total = self.duration
        t = _np.clip(_np.asarray(times, dtype=float), 0.0, total)
        a = self.acceleration
        remaining = total - t
        return _np.where(
            t <= total / 2.0,
            0.5 * a * t * t,
            self.distance - 0.5 * a * remaining * remaining,
        )

    def velocities_at(self, times):
        """Batch :meth:`velocity_at` over an array of times."""
        if _np is None:
            return [self.velocity_at(t) for t in times]
        total = self.duration
        t = _np.clip(_np.asarray(times, dtype=float), 0.0, total)
        a = self.acceleration
        return _np.where(t <= total / 2.0, a * t, a * (total - t))


class PaperProfile:
    """Smooth profile matching the paper's ``T = sqrt(d/a)`` timing law.

    Shape: the raised-cosine (smoothstep-velocity) schedule
    ``s(tau) = d * (tau - sin(2 pi tau) / (2 pi))`` over normalised time
    ``tau = t/T`` with ``T = sqrt(d/a)`` -- zero velocity and acceleration
    at both endpoints, the standard experimental ramp.  Its peak path
    acceleration is ``2 pi d / T^2 = 2 pi a``, which exceeds the quoted
    constant: see the module docstring -- the paper's law is a timing
    calibration, not a literal peak-acceleration schedule, and we expose
    the true peak via :attr:`peak_acceleration` instead of hiding it.
    The compiler's timing model consumes only :attr:`duration`.
    """

    def __init__(self, distance: float, acceleration: float) -> None:
        if distance < 0:
            raise ValueError("distance must be non-negative")
        if acceleration <= 0:
            raise ValueError("acceleration must be positive")
        self.distance = distance
        self.acceleration = acceleration

    @property
    def duration(self) -> float:
        """The paper's Table 1 law, ``sqrt(d / a)``."""
        if self.distance == 0.0:
            return 0.0
        return math.sqrt(self.distance / self.acceleration)

    @property
    def peak_velocity(self) -> float:
        """Peak velocity of the raised-cosine profile, ``2 d / T``."""
        total = self.duration
        return 0.0 if total == 0.0 else 2.0 * self.distance / total

    @property
    def peak_acceleration(self) -> float:
        """Peak acceleration of the shape, ``2 pi d / T^2 = 2 pi a``."""
        return 0.0 if self.distance == 0.0 else 2.0 * math.pi * self.acceleration

    def position_at(self, t: float) -> float:
        """Path position at time ``t`` (clamped)."""
        total = self.duration
        if total == 0.0:
            return 0.0
        tau = min(max(t / total, 0.0), 1.0)
        return self.distance * (tau - math.sin(2.0 * math.pi * tau) / (2.0 * math.pi))

    def velocity_at(self, t: float) -> float:
        """Path velocity at time ``t`` (clamped)."""
        total = self.duration
        if total == 0.0:
            return 0.0
        tau = min(max(t / total, 0.0), 1.0)
        return (self.distance / total) * (1.0 - math.cos(2.0 * math.pi * tau))

    def positions_at(self, times):
        """Batch :meth:`position_at` over an array of times."""
        if _np is None:
            return [self.position_at(t) for t in times]
        total = self.duration
        if total == 0.0:
            return _np.zeros(len(times), dtype=float)
        tau = _np.clip(_np.asarray(times, dtype=float) / total, 0.0, 1.0)
        two_pi = 2.0 * math.pi
        return self.distance * (tau - _np.sin(two_pi * tau) / two_pi)

    def velocities_at(self, times):
        """Batch :meth:`velocity_at` over an array of times."""
        if _np is None:
            return [self.velocity_at(t) for t in times]
        total = self.duration
        if total == 0.0:
            return _np.zeros(len(times), dtype=float)
        tau = _np.clip(_np.asarray(times, dtype=float) / total, 0.0, 1.0)
        return (self.distance / total) * (
            1.0 - _np.cos(2.0 * math.pi * tau)
        )


def _sample_times(total: float, num_samples: int):
    """``num_samples`` equally spaced times over ``[0, total]``."""
    if _np is not None:
        return total * _np.arange(num_samples, dtype=float) / (
            num_samples - 1
        )
    return [total * i / (num_samples - 1) for i in range(num_samples)]


def sample_profile(
    profile, num_samples: int = 51
) -> list[ProfileSample]:
    """Sample a profile into ``num_samples`` equally spaced waypoints.

    The scalar entry point is unchanged; internally the profile is
    evaluated in one batch (``positions_at`` / ``velocities_at``) so
    sampling many waypoints costs array math, not a Python loop.
    """
    if num_samples < 2:
        raise ValueError("need at least two samples")
    times = _sample_times(profile.duration, num_samples)
    positions = profile.positions_at(times)
    velocities = profile.velocities_at(times)
    return [
        ProfileSample(float(t), float(p), float(v))
        for t, p, v in zip(times, positions, velocities)
    ]


@dataclass(frozen=True)
class MoveWaveform:
    """Time-stamped 2D waypoints of one qubit's transport.

    Attributes:
        qubit: The transported qubit.
        times: Sample times (seconds from CollMove start).
        xs: x coordinates (metres) at each sample.
        ys: y coordinates (metres) at each sample.
    """

    qubit: int
    times: tuple[float, ...]
    xs: tuple[float, ...]
    ys: tuple[float, ...]


def move_waveform(
    move: Move,
    params: HardwareParams,
    num_samples: int = 51,
) -> MoveWaveform:
    """Sample one 1Q move into a straight-line waveform.

    The path parameter follows :class:`PaperProfile` (the timing model in
    force), projected onto the straight segment from source to
    destination.
    """
    profile = PaperProfile(move.distance, params.acceleration)
    times = _sample_times(profile.duration, num_samples)
    return _project_waveform(move, profile, times, times)


def _project_waveform(
    move: Move, profile: PaperProfile, own_times, shared_times
) -> MoveWaveform:
    """Project path samples at ``own_times`` onto the straight segment,
    stamped with ``shared_times`` (batch math under numpy)."""
    distance = move.distance
    x0, y0 = move.source.position
    x1, y1 = move.destination.position
    positions = profile.positions_at(own_times)
    if _np is not None:
        frac = (
            _np.zeros(len(positions))
            if distance == 0.0
            else positions / distance
        )
        xs = x0 + frac * (x1 - x0)
        ys = y0 + frac * (y1 - y0)
        return MoveWaveform(
            move.qubit,
            tuple(float(t) for t in shared_times),
            tuple(float(x) for x in xs),
            tuple(float(y) for y in ys),
        )
    times, xs, ys = [], [], []
    for t_shared, position in zip(shared_times, positions):
        frac = 0.0 if distance == 0.0 else position / distance
        times.append(t_shared)
        xs.append(x0 + frac * (x1 - x0))
        ys.append(y0 + frac * (y1 - y0))
    return MoveWaveform(move.qubit, tuple(times), tuple(xs), tuple(ys))


def coll_move_waveforms(
    coll_move: CollMove,
    params: HardwareParams,
    num_samples: int = 51,
) -> list[MoveWaveform]:
    """Waveforms of all member moves, stretched to the shared duration.

    AOD rows/columns move in tandem: the collective move takes as long as
    its slowest member, so shorter members are time-dilated onto the same
    clock (they arrive together).  The sampled waveforms preserve the
    AOD order invariant at every shared time step (tested property).
    """
    total = coll_move.move_duration(params)
    shared_times = _sample_times(total, num_samples)
    waveforms = []
    for move in coll_move.moves:
        profile = PaperProfile(move.distance, params.acceleration)
        own = profile.duration
        # Uniform time dilation onto the shared clock.
        if total == 0.0:
            own_times = _sample_times(0.0, num_samples)
        elif _np is not None:
            own_times = own * (shared_times / total)
        else:
            own_times = [own * (t / total) for t in shared_times]
        waveforms.append(
            _project_waveform(move, profile, own_times, shared_times)
        )
    return waveforms


def max_sampled_acceleration(waveform: MoveWaveform) -> float:
    """Estimate the waveform's peak acceleration by finite differences."""
    times, xs, ys = waveform.times, waveform.xs, waveform.ys
    if len(times) < 3:
        return 0.0
    peak = 0.0
    for i in range(1, len(times) - 1):
        dt0 = times[i] - times[i - 1]
        dt1 = times[i + 1] - times[i]
        if dt0 <= 0 or dt1 <= 0:
            continue
        ax = ((xs[i + 1] - xs[i]) / dt1 - (xs[i] - xs[i - 1]) / dt0) / (
            0.5 * (dt0 + dt1)
        )
        ay = ((ys[i + 1] - ys[i]) / dt1 - (ys[i] - ys[i - 1]) / dt0) / (
            0.5 * (dt0 + dt1)
        )
        peak = max(peak, math.hypot(ax, ay))
    return peak


__all__ = [
    "BangBangProfile",
    "MoveWaveform",
    "PaperProfile",
    "ProfileSample",
    "coll_move_waveforms",
    "max_sampled_acceleration",
    "move_waveform",
    "sample_profile",
]
