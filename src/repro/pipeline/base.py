"""Pass and Pipeline: the composable compilation skeleton.

A *pass* is one stage of a compiler: it receives the
:class:`~repro.pipeline.context.CompileContext`, reads the fields earlier
passes produced, writes its own, and returns the context.  A *pipeline*
is an ordered pass list executed with per-pass wall-clock timing, so
every backend reports where its compile time goes
(``CompilationResult.stats["pass_timings"]``).

Passes are stateless with respect to any single compilation: all mutable
state lives in the context, so one :class:`Pipeline` instance can be
shared across compilations, threads and backends.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

from .context import CompileContext


@runtime_checkable
class Pass(Protocol):
    """One compilation stage: context in, context out.

    Implementations must expose a ``name`` (unique within a pipeline,
    used for timing/stats keys) and a ``run`` method.  ``run`` may
    mutate the context in place and return it; returning ``None`` is
    treated as "context mutated in place".
    """

    name: str

    def run(self, ctx: CompileContext) -> CompileContext | None:
        """Execute the pass against ``ctx``."""
        ...


class Pipeline:
    """An ordered pass list with per-pass timing.

    Args:
        passes: The passes, executed in order.
        name: Pipeline label (the backend name, in registry use).

    Example:
        >>> from repro.pipeline import get_backend
        >>> spec = get_backend("powermove")
        >>> [p.name for p in spec.pipeline][:2]
        ['transpile', 'block_partition']
    """

    def __init__(self, passes: Sequence[Pass], name: str = "") -> None:
        if not passes:
            raise ValueError("a pipeline needs at least one pass")
        seen: set[str] = set()
        for p in passes:
            if not getattr(p, "name", ""):
                raise ValueError(f"pass {p!r} has no name")
            if p.name in seen:
                raise ValueError(f"duplicate pass name {p.name!r}")
            seen.add(p.name)
        self._passes: tuple[Pass, ...] = tuple(passes)
        self.name = name

    def __iter__(self) -> Iterator[Pass]:
        return iter(self._passes)

    def __len__(self) -> int:
        return len(self._passes)

    @property
    def pass_names(self) -> tuple[str, ...]:
        """The pass names, in execution order."""
        return tuple(p.name for p in self._passes)

    def run(
        self, ctx: CompileContext, memo: Any | None = None
    ) -> CompileContext:
        """Execute every pass in order, recording per-pass timings.

        Timings land in ``ctx.pass_timings`` (name -> seconds, in
        execution order).  Pass exceptions propagate unwrapped so the
        facades keep their historical error contracts (e.g. the
        ``ValueError`` on a missing storage zone).

        ``memo`` (see :class:`repro.engine.passmemo.PassMemo`) enables
        pass-level memoization: ``memo.restore(ctx)`` may rebuild the
        context from a cached snapshot and return the index of the
        first pass that still must run (restored passes keep a 0.0
        timing entry so the key set stays complete), and
        ``memo.record(ctx, i)`` snapshots the context after each
        executed pass.

        Alongside the duration map, each *executed* pass records a
        ``(name, start_s, end_s)`` offset pair (relative to this call)
        in ``ctx.pass_spans`` -- the bridge that turns pass timings
        into the per-pass child spans of a job trace.
        """
        run_start = time.perf_counter()
        start_index = 0
        if memo is not None:
            start_index = memo.restore(ctx)
        # A restored snapshot carries the *recording* run's span list
        # (or, for snapshots written before spans existed, none at
        # all): only this run's own measurements belong on the trace.
        ctx.pass_spans = []
        for index, p in enumerate(self._passes):
            if index < start_index:
                continue
            start = time.perf_counter()
            result = p.run(ctx)
            if result is not None:
                ctx = result
            end = time.perf_counter()
            ctx.pass_timings[p.name] = end - start
            ctx.pass_spans.append(
                (p.name, start - run_start, end - run_start)
            )
            if memo is not None:
                memo.record(ctx, index)
        return ctx

    def __repr__(self) -> str:
        label = self.name or "pipeline"
        return f"Pipeline({label}: {' -> '.join(self.pass_names)})"


__all__ = ["Pass", "Pipeline"]
