"""Enola's schedule and route passes (revert-to-initial-layout scheme).

Enola shares the pipeline front (transpile, partition, architecture,
annealed placement) and back (emit) with PowerMove; only its middle
differs: repeated randomised-MIS stage extraction instead of greedy
colouring, and a revert routing scheme instead of continuous layout
transitions.  The MIS scheduler consumes the *shared* context RNG so
the annealing-placement and MIS random streams interleave exactly as in
the historical monolith.
"""

from __future__ import annotations

from ..baselines.placement import row_major_layout
from ..core.collmove_scheduler import schedule_coll_moves
from ..hardware.geometry import Zone
from ..hardware.moves import CollMove, Move, group_moves
from ..schedule.instructions import RydbergStage
from .context import CompileContext
from .strategies import resolve_routing, resolve_stage_selection


class EnolaStageSchedulePass:
    """Randomised-MIS stage extraction (best of ``mis_restarts``).

    Resolved through the stage-selection registry: the config's
    ``use_window`` flag picks between the ``mis`` and ``mis-windowed``
    defaults (a job's ``strategies`` override wins).  With windowing,
    blocks larger than ``window_size`` gates are scheduled over a
    sliding window (:func:`repro.baselines.mis.windowed_mis_stages`) so
    the conflict graph never materialises O(gates^2) edges; smaller
    blocks keep the exhaustive extraction and stay bit-identical to the
    default path.
    """

    name = "mis_schedule"

    def run(self, ctx: CompileContext) -> None:
        ctx.require("partition", "rng")
        cfg = ctx.config
        default = (
            "mis-windowed" if getattr(cfg, "use_window", False) else "mis"
        )
        strategy = resolve_stage_selection(ctx, default)
        ctx.block_stages = [
            strategy.stages(block, ctx)
            for block in ctx.partition.blocks
        ]
        if strategy.name == "mis-windowed":
            window_size = getattr(cfg, "window_size", 1000)
            ctx.counters["mis_windowed_blocks"] = sum(
                1
                for block in ctx.partition.blocks
                if len(block.gates) > window_size
            )


class EnolaRevertRoutePass:
    """Out-excite-back routing plus per-stage movement batching.

    For every stage one qubit of each gate moves to its partner (or,
    in the ``naive_storage`` strawman, both partners shuttle to fixed
    computation-zone home sites), the Rydberg laser fires, and the moved
    qubits revert.  Movement batching is Enola's: one CollMove per move
    unless ``merge_moves``, then one CollMove per AOD per batch.
    """

    name = "revert_route"

    def run(self, ctx: CompileContext) -> None:
        ctx.require(
            "native", "architecture", "initial_layout", "block_stages"
        )
        cfg = ctx.config
        strategy = resolve_routing(ctx, "revert")
        initial_layout = ctx.initial_layout
        compute_home = (
            row_major_layout(
                ctx.architecture, ctx.native.num_qubits, Zone.COMPUTE
            )
            if cfg.naive_storage
            else None
        )
        block_instructions: list[list] = []
        total_stages = 0
        total_moves = 0
        total_coll_moves = 0
        for stages in ctx.block_stages:
            instructions: list = []
            for stage in stages:
                moves_out: list[Move] = []
                for gate in stage.gates:
                    mover, anchor = strategy.mover_anchor(gate.qubits)
                    if compute_home is not None:
                        target = compute_home.site_of(mover)
                        for q in (mover, anchor):
                            moves_out.append(
                                Move(q, initial_layout.site_of(q), target)
                            )
                    else:
                        source = initial_layout.site_of(mover)
                        destination = initial_layout.site_of(anchor)
                        if source != destination:
                            moves_out.append(
                                Move(mover, source, destination)
                            )
                out_batches = self._into_batches(moves_out, cfg)
                instructions.extend(out_batches)
                instructions.append(RydbergStage(gates=list(stage.gates)))
                moves_back = [
                    Move(m.qubit, m.destination, m.source)
                    for m in moves_out
                ]
                back_batches = self._into_batches(moves_back, cfg)
                instructions.extend(back_batches)
                total_stages += 1
                total_moves += len(moves_out) + len(moves_back)
                total_coll_moves += sum(
                    b.num_coll_moves for b in out_batches + back_batches
                )
            block_instructions.append(instructions)
        ctx.block_instructions = block_instructions
        ctx.counters["num_stages"] = total_stages
        ctx.counters["num_single_moves"] = total_moves
        ctx.counters["num_coll_moves"] = total_coll_moves

    @staticmethod
    def _into_batches(moves: list[Move], cfg) -> list:
        if cfg.merge_moves:
            groups = group_moves(moves, distance_aware=False)
        else:
            groups = [CollMove(moves=[move]) for move in moves]
        return schedule_coll_moves(
            groups, num_aods=cfg.num_aods, prioritize_move_ins=False
        )


def enola_metadata(ctx: CompileContext) -> dict:
    """Historical Enola program metadata (key order preserved).

    Windowing keys are emitted only when the sliding window actually
    fired on at least one block: program metadata feeds the program
    digest, so the default path must keep the historical key set
    byte-for-byte -- and a ``use_window`` run whose blocks all fit
    under the exactness threshold is *bit-identical* to the
    unwindowed run, metadata included.
    """
    cfg = ctx.config
    doc = {
        "num_blocks": ctx.partition.num_blocks,
        "num_stages": ctx.counters["num_stages"],
        "num_single_moves": ctx.counters["num_single_moves"],
        "num_coll_moves": ctx.counters["num_coll_moves"],
        "use_storage": cfg.naive_storage,
        "num_aods": cfg.num_aods,
    }
    windowed_blocks = ctx.counters.get("mis_windowed_blocks", 0)
    if windowed_blocks:
        doc["use_window"] = True
        doc["window_size"] = getattr(cfg, "window_size", 1000)
        doc["windowed_blocks"] = windowed_blocks
    return doc


__all__ = [
    "EnolaRevertRoutePass",
    "EnolaStageSchedulePass",
    "enola_metadata",
]
