"""Shared pipeline passes: transpile, partition, architecture, layout, emit.

Every registered backend (PowerMove, Enola, Atomique, ablations) starts
and ends with these passes; only the middle schedule/route/batch passes
differ.  All of them are configured with small ``config -> value``
callables so one pass class serves every backend's conventions (which
zone is "home", which config field picks the AOD count, ...).
"""

from __future__ import annotations

from typing import Any, Callable

from ..baselines.placement import annealed_layout, row_major_layout
from ..circuits.blocks import partition_into_blocks
from ..circuits.transpile import transpile_to_native
from ..hardware.geometry import Zone, ZonedArchitecture
from ..schedule.instructions import OneQubitLayer
from ..schedule.program import NAProgram
from ..utils.rng import make_rng
from .context import CompileContext


class TranspilePass:
    """Rewrite the source circuit into the native {1Q, CZ-class} set."""

    name = "transpile"

    def run(self, ctx: CompileContext) -> None:
        ctx.native = transpile_to_native(ctx.circuit)


class BlockPartitionPass:
    """Split the native circuit into commuting CZ blocks + 1Q gaps."""

    name = "block_partition"

    def run(self, ctx: CompileContext) -> None:
        ctx.require("native")
        ctx.partition = partition_into_blocks(ctx.native)


class ArchitecturePass:
    """Default the target machine from the circuit width.

    A caller-supplied architecture is honoured verbatim; the
    storage-zone requirement is checked either way.

    Args:
        with_storage: ``config -> bool``, whether the default floor plan
            includes a storage zone.
        num_aods: ``config -> int`` AOD count for the default machine.
        storage_error: Error message raised when ``with_storage(config)``
            but the (possibly caller-supplied) machine has no storage.
    """

    name = "architecture"

    def __init__(
        self,
        with_storage: Callable[[Any], bool],
        num_aods: Callable[[Any], int] = lambda cfg: 1,
        storage_error: str = "compilation needs a storage zone",
    ) -> None:
        self._with_storage = with_storage
        self._num_aods = num_aods
        self._storage_error = storage_error

    def run(self, ctx: CompileContext) -> None:
        ctx.require("native")
        needs_storage = self._with_storage(ctx.config)
        if ctx.architecture is None:
            ctx.architecture = ZonedArchitecture.for_qubits(
                ctx.native.num_qubits,
                with_storage=needs_storage,
                num_aods=self._num_aods(ctx.config),
                params=ctx.params,
            )
        if needs_storage and not ctx.architecture.has_storage:
            raise ValueError(self._storage_error)


class InitialLayoutPass:
    """Default starting placement: row-major or simulated-annealed.

    A caller-supplied layout is honoured verbatim.

    Args:
        home_zone: ``config -> Zone`` the initial placement lives in.
        annealed: ``config -> bool``, use the annealing placement.
        iterations: ``config -> int | None`` annealing budget per qubit
            (``None`` keeps :func:`annealed_layout`'s default).
        fresh_rng: Seed a private RNG from ``config.seed`` instead of
            consuming the context stream (PowerMove's historical
            behaviour; Enola's annealing shares ``ctx.rng`` with its MIS
            scheduler).
    """

    name = "initial_layout"

    def __init__(
        self,
        home_zone: Callable[[Any], Zone],
        annealed: Callable[[Any], bool],
        iterations: Callable[[Any], int | None] = lambda cfg: None,
        fresh_rng: bool = False,
    ) -> None:
        self._home_zone = home_zone
        self._annealed = annealed
        self._iterations = iterations
        self._fresh_rng = fresh_rng

    def run(self, ctx: CompileContext) -> None:
        if ctx.initial_layout is not None:
            return
        ctx.require("native", "architecture")
        cfg = ctx.config
        zone = self._home_zone(cfg)
        if self._annealed(cfg):
            rng = make_rng(cfg.seed) if self._fresh_rng else ctx.rng
            kwargs: dict[str, Any] = {}
            budget = self._iterations(cfg)
            if budget is not None:
                kwargs["iterations_per_qubit"] = budget
            ctx.initial_layout = annealed_layout(
                ctx.architecture, ctx.native, zone=zone, rng=rng, **kwargs
            )
        else:
            ctx.initial_layout = row_major_layout(
                ctx.architecture, ctx.native.num_qubits, zone
            )


class EmitProgramPass:
    """Assemble the final program from per-block instruction streams.

    Interleaves the partition's 1Q gap layers with each block's
    movement/Rydberg instructions, exactly as the monolithic compilers
    did.  Backends that retarget 1Q gates (Atomique) pre-compute
    ``ctx.gap_layers`` instead; when set it wins over the raw gaps.

    Args:
        metadata: ``ctx -> dict`` building the program metadata (each
            backend keeps its historical key set).
    """

    name = "emit_program"

    def __init__(
        self, metadata: Callable[[CompileContext], dict]
    ) -> None:
        self._metadata = metadata

    def _gap_layer(self, ctx: CompileContext, index: int):
        if ctx.gap_layers is not None:
            return ctx.gap_layers[index]
        gap = ctx.partition.one_qubit_gaps[index]
        return OneQubitLayer(list(gap)) if gap else None

    def run(self, ctx: CompileContext) -> None:
        ctx.require(
            "partition", "architecture", "initial_layout",
            "block_instructions",
        )
        instructions: list = []
        for block in ctx.partition.blocks:
            gap_layer = self._gap_layer(ctx, block.index)
            if gap_layer is not None:
                instructions.append(gap_layer)
            instructions.extend(ctx.block_instructions[block.index])
        trailing = self._gap_layer(ctx, ctx.partition.num_blocks)
        if trailing is not None:
            instructions.append(trailing)
        ctx.program = NAProgram(
            architecture=ctx.architecture,
            initial_layout=ctx.initial_layout,
            instructions=instructions,
            source_name=ctx.circuit.name,
            compiler_name=ctx.compiler_name,
            metadata=self._metadata(ctx),
        )


__all__ = [
    "ArchitecturePass",
    "BlockPartitionPass",
    "EmitProgramPass",
    "InitialLayoutPass",
    "TranspilePass",
]
