"""Shared pipeline passes: transpile, partition, architecture, layout, emit.

Every registered backend (PowerMove, Enola, Atomique, ablations) starts
and ends with these passes; only the middle schedule/route/batch passes
differ.  All of them are configured with small ``config -> value``
callables so one pass class serves every backend's conventions (which
zone is "home", which config field picks the AOD count, ...).
"""

from __future__ import annotations

from typing import Any, Callable

from ..circuits.blocks import partition_into_blocks
from ..circuits.transpile import transpile_to_native
from ..hardware.catalog import ARCHITECTURES
from ..hardware.geometry import Zone, ZonedArchitecture
from ..schedule.instructions import OneQubitLayer
from ..schedule.program import NAProgram
from ..utils.rng import make_rng
from .context import CompileContext
from .strategies import resolve_placement


class TranspilePass:
    """Rewrite the source circuit into the native {1Q, CZ-class} set."""

    name = "transpile"

    def run(self, ctx: CompileContext) -> None:
        ctx.native = transpile_to_native(ctx.circuit)


class BlockPartitionPass:
    """Split the native circuit into commuting CZ blocks + 1Q gaps."""

    name = "block_partition"

    def run(self, ctx: CompileContext) -> None:
        ctx.require("native")
        ctx.partition = partition_into_blocks(ctx.native)


class ArchitecturePass:
    """Default the target machine from the circuit width.

    A caller-supplied architecture is honoured verbatim; a named
    catalog entry (``ctx.arch_name``, from ``CompileJob.arch`` or a
    manifest) is built through
    :data:`~repro.hardware.catalog.ARCHITECTURES`; otherwise the
    historical :meth:`ZonedArchitecture.for_qubits` default applies.
    The storage-zone requirement is checked in every case.

    Args:
        with_storage: ``config -> bool``, whether the default floor plan
            includes a storage zone.
        num_aods: ``config -> int`` AOD count for the default machine.
        storage_error: Error message raised when ``with_storage(config)``
            but the (possibly caller-supplied) machine has no storage.
    """

    name = "architecture"

    def __init__(
        self,
        with_storage: Callable[[Any], bool],
        num_aods: Callable[[Any], int] = lambda cfg: 1,
        storage_error: str = "compilation needs a storage zone",
    ) -> None:
        self._with_storage = with_storage
        self._num_aods = num_aods
        self._storage_error = storage_error

    def run(self, ctx: CompileContext) -> None:
        ctx.require("native")
        needs_storage = self._with_storage(ctx.config)
        if ctx.architecture is None:
            if ctx.arch_name is not None:
                ctx.architecture = ARCHITECTURES.get(ctx.arch_name).build(
                    ctx.native.num_qubits,
                    self._num_aods(ctx.config),
                    ctx.params,
                )
            else:
                ctx.architecture = ZonedArchitecture.for_qubits(
                    ctx.native.num_qubits,
                    with_storage=needs_storage,
                    num_aods=self._num_aods(ctx.config),
                    params=ctx.params,
                )
        if needs_storage and not ctx.architecture.has_storage:
            raise ValueError(self._storage_error)


class InitialLayoutPass:
    """Default starting placement, resolved through the placement registry.

    A caller-supplied layout is honoured verbatim.  The placement
    *strategy* comes from ``ctx.strategies["placement"]`` when a job
    selected one; otherwise the backend's config picks the historical
    default (``annealed`` when the ``annealed`` predicate holds,
    ``row-major`` otherwise) -- so default compilations stay
    bit-identical to the pre-registry code.

    Args:
        home_zone: ``config -> Zone`` the initial placement lives in.
        annealed: ``config -> bool``, default to the annealing entry.
        iterations: ``config -> int | None`` annealing budget per qubit
            (``None`` keeps the entry's own default).
        fresh_rng: Seed a private RNG from ``config.seed`` instead of
            consuming the context stream (PowerMove's historical
            behaviour; Enola's annealing shares ``ctx.rng`` with its MIS
            scheduler).  The stream discipline is the pass's, whichever
            strategy runs; deterministic strategies consume nothing.
    """

    name = "initial_layout"

    def __init__(
        self,
        home_zone: Callable[[Any], Zone],
        annealed: Callable[[Any], bool],
        iterations: Callable[[Any], int | None] = lambda cfg: None,
        fresh_rng: bool = False,
    ) -> None:
        self._home_zone = home_zone
        self._annealed = annealed
        self._iterations = iterations
        self._fresh_rng = fresh_rng

    def run(self, ctx: CompileContext) -> None:
        if ctx.initial_layout is not None:
            return
        ctx.require("native", "architecture")
        cfg = ctx.config
        default = "annealed" if self._annealed(cfg) else "row-major"
        strategy = resolve_placement(ctx, default)
        rng = make_rng(cfg.seed) if self._fresh_rng else ctx.rng
        ctx.initial_layout = strategy.place(
            ctx.architecture,
            ctx.native,
            self._home_zone(cfg),
            rng,
            self._iterations(cfg),
        )


class EmitProgramPass:
    """Assemble the final program from per-block instruction streams.

    Interleaves the partition's 1Q gap layers with each block's
    movement/Rydberg instructions, exactly as the monolithic compilers
    did.  Backends that retarget 1Q gates (Atomique) pre-compute
    ``ctx.gap_layers`` instead; when set it wins over the raw gaps.

    Args:
        metadata: ``ctx -> dict`` building the program metadata (each
            backend keeps its historical key set).
    """

    name = "emit_program"

    def __init__(
        self, metadata: Callable[[CompileContext], dict]
    ) -> None:
        self._metadata = metadata

    def _gap_layer(self, ctx: CompileContext, index: int):
        if ctx.gap_layers is not None:
            return ctx.gap_layers[index]
        gap = ctx.partition.one_qubit_gaps[index]
        return OneQubitLayer(list(gap)) if gap else None

    def run(self, ctx: CompileContext) -> None:
        ctx.require(
            "partition", "architecture", "initial_layout",
            "block_instructions",
        )
        instructions: list = []
        for block in ctx.partition.blocks:
            gap_layer = self._gap_layer(ctx, block.index)
            if gap_layer is not None:
                instructions.append(gap_layer)
            instructions.extend(ctx.block_instructions[block.index])
        trailing = self._gap_layer(ctx, ctx.partition.num_blocks)
        if trailing is not None:
            instructions.append(trailing)
        ctx.program = NAProgram(
            architecture=ctx.architecture,
            initial_layout=ctx.initial_layout,
            instructions=instructions,
            source_name=ctx.circuit.name,
            compiler_name=ctx.compiler_name,
            metadata=self._metadata(ctx),
        )


__all__ = [
    "ArchitecturePass",
    "BlockPartitionPass",
    "EmitProgramPass",
    "InitialLayoutPass",
    "TranspilePass",
]
