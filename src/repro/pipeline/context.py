"""The typed state threaded through a compiler pipeline.

:class:`CompileContext` is the single mutable object a
:class:`~repro.pipeline.base.Pipeline` threads through its passes.
Early passes populate the front half (native circuit, block partition,
architecture, initial layout); backend-specific schedule/route passes
fill the middle (stages, routed moves, per-block instruction streams);
the shared emit pass assembles the final
:class:`~repro.schedule.program.NAProgram`.

The field groups, in the order they are normally produced:

==================  ====================================================
``circuit``         The source circuit (input).
``config``          The backend's config dataclass (input).
``params``          Hardware constants (input).
``arch_name``       Optional architecture-catalog entry name (input;
                    resolved by ArchitecturePass).
``strategies``      Axis -> entry strategy overrides (input; resolved
                    by the placement/schedule/route passes through
                    :mod:`repro.pipeline.strategies`).
``rng``             Backend-wide RNG stream seeded from ``config.seed``
                    (Enola's annealing and MIS share it; PowerMove's
                    passes derive their own streams for historical
                    bit-compatibility).
``native``          Transpiled circuit (TranspilePass).
``partition``       Commuting CZ blocks + 1Q gaps (BlockPartitionPass).
``architecture``    Machine floor plan (ArchitecturePass; honoured
                    verbatim when supplied by the caller).
``initial_layout``  Starting placement (InitialLayoutPass; honoured
                    verbatim when supplied by the caller).
``block_stages``    Per block: ordered Rydberg stages (schedule pass).
``routed_stages``   Per block: routing outcome per stage (route pass).
``block_instructions``  Per block: movement + Rydberg instructions.
``gap_layers``      Optional per-gap 1Q layers (index ``i`` precedes
                    block ``i``; the last entry trails the program) for
                    backends that retarget 1Q gates (Atomique).
``counters``        Free-form pass counters feeding program metadata.
``pass_timings``    Per-pass wall-clock seconds (filled by Pipeline).
``program``         The final program (EmitProgramPass).
==================  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..circuits.blocks import BlockPartition
from ..circuits.circuit import Circuit
from ..hardware.geometry import ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..schedule.instructions import Instruction
from ..schedule.program import NAProgram


@dataclass
class CompileContext:
    """Mutable compilation state shared by a pipeline's passes."""

    circuit: Circuit
    config: Any
    params: HardwareParams = DEFAULT_PARAMS
    compiler_name: str = ""
    rng: random.Random | None = None

    # Per-job selection inputs: a named architecture-catalog entry
    # (resolved by ArchitecturePass when no explicit architecture was
    # supplied) and the axis -> entry strategy overrides the passes
    # resolve through repro.pipeline.strategies.  Both are compilation
    # *inputs*: they join the pass-memo base payload and (via the job
    # schema) the engine cache key.
    arch_name: str | None = None
    strategies: dict[str, str] = field(default_factory=dict)

    # Populated by the shared front-end passes.
    native: Circuit | None = None
    partition: BlockPartition | None = None
    architecture: ZonedArchitecture | None = None
    initial_layout: Layout | None = None

    # Populated by backend schedule/route/batch passes.
    block_stages: list[list] | None = None
    routed_stages: list[list] | None = None
    block_instructions: list[list[Instruction]] | None = None
    gap_layers: list[Instruction | None] | None = None

    # Bookkeeping.
    counters: dict[str, Any] = field(default_factory=dict)
    pass_timings: dict[str, float] = field(default_factory=dict)
    # (name, start_s, end_s) offsets relative to the pipeline run start
    # for every pass that actually executed (memo-restored passes are
    # absent here, unlike their 0.0 pass_timings entries).  Feeds the
    # per-pass child spans of job traces; volatile, never part of any
    # content key.
    pass_spans: list = field(default_factory=list)

    # Final product.
    program: NAProgram | None = None

    def require(self, *fields: str) -> None:
        """Raise if any named context field is still unset.

        Passes call this to turn a mis-ordered pipeline into a clear
        error instead of an ``AttributeError`` deep inside an algorithm.
        """
        missing = [name for name in fields if getattr(self, name) is None]
        if missing:
            raise ValueError(
                f"context missing {', '.join(missing)}; "
                "a required earlier pass did not run"
            )


__all__ = ["CompileContext"]
