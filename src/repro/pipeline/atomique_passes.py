"""Atomique's SWAP-insertion route pass (fixed-array baseline).

Atomique shares the pipeline front (transpile, partition, architecture,
annealed placement in the computation zone) and the emit pass with the
movement compilers.  Its middle is a single pass: qubits live on fixed
home sites, connectivity comes from SWAP chains (three physical CZs
each), and every physical CZ executes as one move-in / excite /
move-back cycle.

Because SWAPs permute the logical->atom mapping, the 1Q *gap* layers
between blocks must be retargeted with the mapping state at the moment
the block executes -- the pass therefore pre-computes
``ctx.gap_layers`` for the shared emit pass instead of letting it copy
the partition's gaps verbatim.
"""

from __future__ import annotations

from ..circuits.gates import Gate
from ..hardware.geometry import Site, ZonedArchitecture
from ..hardware.layout import Layout
from ..hardware.moves import CollMove, Move
from ..schedule.instructions import MoveBatch, OneQubitLayer, RydbergStage
from .context import CompileContext
from .strategies import resolve_routing


class _RoutingState:
    """Logical->atom mapping plus SWAP/physical-gate emission."""

    def __init__(self, arch: ZonedArchitecture, layout: Layout) -> None:
        self.arch = arch
        # Atoms never change homes; identify atom i with qubit index i of
        # the program and track which atom holds each logical state.
        self.home: dict[int, Site] = {
            q: layout.site_of(q) for q in layout.qubits
        }
        self.logical_to_atom: dict[int, int] = {
            q: q for q in layout.qubits
        }
        self._site_to_atom: dict[tuple[int, int], int] = {
            (s.col, s.row): q for q, s in self.home.items()
        }

    # -- geometry ----------------------------------------------------------

    def atom_at(self, col: int, row: int) -> int | None:
        """Atom whose home is compute site (col, row), if any."""
        return self._site_to_atom.get((col, row))

    def logical_distance(self, gate: Gate) -> int:
        """Chebyshev grid distance between a gate's logical partners."""
        a, b = gate.qubits
        sa = self.home[self.logical_to_atom[a]]
        sb = self.home[self.logical_to_atom[b]]
        return max(abs(sa.col - sb.col), abs(sa.row - sb.row))

    def _step_toward(self, source: Site, target: Site) -> Site:
        """The neighbouring *occupied* site one step from source toward
        target (greedy Chebyshev descent over atom homes)."""
        best: Site | None = None
        best_key: tuple | None = None
        for dc in (-1, 0, 1):
            for dr in (-1, 0, 1):
                if dc == 0 and dr == 0:
                    continue
                col, row = source.col + dc, source.row + dr
                atom = self.atom_at(col, row)
                if atom is None:
                    continue
                site = self.home[atom]
                dist = max(
                    abs(site.col - target.col), abs(site.row - target.row)
                )
                key = (dist, abs(dc) + abs(dr), col, row)
                if best_key is None or key < best_key:
                    best_key = key
                    best = site
        if best is None:  # pragma: no cover - grid always has neighbours
            raise RuntimeError("isolated atom in fixed array")
        return best

    # -- gate emission -------------------------------------------------------

    def physical_1q(self, gate: Gate) -> Gate:
        """Retarget a logical 1Q gate onto the atom holding its state."""
        return Gate(
            gate.name,
            (self.logical_to_atom[gate.qubits[0]],),
            gate.params,
        )

    def _emit_physical_cz_class(
        self, gate_name: str, params: tuple, atom_a: int, atom_b: int,
        instructions: list,
    ) -> None:
        """One physical CZ-class gate: move-in, excite, move-back."""
        site_a = self.home[atom_a]
        site_b = self.home[atom_b]
        out = Move(atom_a, site_a, site_b)
        instructions.append(MoveBatch(coll_moves=[CollMove(moves=[out])]))
        instructions.append(
            RydbergStage(gates=[Gate(gate_name, (atom_a, atom_b), params)])
        )
        back = Move(atom_a, site_b, site_a)
        instructions.append(MoveBatch(coll_moves=[CollMove(moves=[back])]))

    def _emit_swap(
        self, atom_a: int, atom_b: int, instructions: list
    ) -> None:
        """SWAP the logical states of two neighbouring atoms: 3 CX, each
        as H-CZ-H (the standard native decomposition)."""
        for control, target in (
            (atom_a, atom_b),
            (atom_b, atom_a),
            (atom_a, atom_b),
        ):
            instructions.append(
                OneQubitLayer(gates=[Gate("h", (target,))])
            )
            self._emit_physical_cz_class(
                "cz", (), control, target, instructions
            )
            instructions.append(
                OneQubitLayer(gates=[Gate("h", (target,))])
            )
        # Update the logical mapping (atoms always hold exactly one
        # logical state, so both lookups succeed).
        logical_a = next(
            q for q, a in self.logical_to_atom.items() if a == atom_a
        )
        logical_b = next(
            q for q, a in self.logical_to_atom.items() if a == atom_b
        )
        self.logical_to_atom[logical_a] = atom_b
        self.logical_to_atom[logical_b] = atom_a

    def route_and_execute(self, gate: Gate, instructions: list) -> int:
        """Route a logical CZ-class gate with SWAPs, then execute it.

        Returns the number of SWAPs inserted.
        """
        logical_a, logical_b = gate.qubits
        swaps = 0
        while True:
            atom_a = self.logical_to_atom[logical_a]
            atom_b = self.logical_to_atom[logical_b]
            site_a = self.home[atom_a]
            site_b = self.home[atom_b]
            distance = max(
                abs(site_a.col - site_b.col), abs(site_a.row - site_b.row)
            )
            if distance <= 1:
                break
            step_site = self._step_toward(site_a, site_b)
            step_atom = self.atom_at(step_site.col, step_site.row)
            assert step_atom is not None
            self._emit_swap(atom_a, step_atom, instructions)
            swaps += 1
        atom_a = self.logical_to_atom[logical_a]
        atom_b = self.logical_to_atom[logical_b]
        self._emit_physical_cz_class(
            gate.name, gate.params, atom_a, atom_b, instructions
        )
        return swaps


class AtomiqueSwapRoutePass:
    """SWAP-chain routing over fixed home sites, one pass per program.

    Produces both the per-block instruction streams and the retargeted
    1Q gap layers (``ctx.gap_layers``) for the shared emit pass.
    """

    name = "swap_route"

    def run(self, ctx: CompileContext) -> None:
        ctx.require("partition", "architecture", "initial_layout")
        # Family check only: the swap family has no per-stage hooks, but
        # resolving rejects e.g. a continuous-family override up front.
        resolve_routing(ctx, "swap")
        state = _RoutingState(ctx.architecture, ctx.initial_layout)
        block_instructions: list[list] = []
        gap_layers: list = []
        swaps_inserted = 0
        for block in ctx.partition.blocks:
            gap = ctx.partition.one_qubit_gaps[block.index]
            gap_layers.append(
                OneQubitLayer([state.physical_1q(g) for g in gap])
                if gap
                else None
            )
            instructions: list = []
            # Cheap heuristic: route the currently-closest pairs first so
            # earlier swaps do not stretch later ones more than needed.
            gates = sorted(
                block.gates, key=lambda g: state.logical_distance(g)
            )
            for gate in gates:
                swaps_inserted += state.route_and_execute(
                    gate, instructions
                )
            block_instructions.append(instructions)
        trailing = ctx.partition.one_qubit_gaps[ctx.partition.num_blocks]
        gap_layers.append(
            OneQubitLayer([state.physical_1q(g) for g in trailing])
            if trailing
            else None
        )
        ctx.block_instructions = block_instructions
        ctx.gap_layers = gap_layers
        ctx.counters["swaps_inserted"] = swaps_inserted
        ctx.counters["num_stages"] = sum(
            sum(1 for i in instrs if isinstance(i, RydbergStage))
            for instrs in block_instructions
        )
        ctx.counters["final_mapping"] = dict(state.logical_to_atom)


def atomique_metadata(ctx: CompileContext) -> dict:
    """Historical Atomique program metadata (key order preserved)."""
    return {
        "num_blocks": ctx.partition.num_blocks,
        "num_stages": ctx.counters["num_stages"],
        "swaps_inserted": ctx.counters["swaps_inserted"],
        "use_storage": False,
        "num_aods": 1,
        "final_mapping": ctx.counters["final_mapping"],
    }


__all__ = [
    "AtomiqueSwapRoutePass",
    "atomique_metadata",
]
