"""Pre-compile cost model: pick the cheapest backend for a circuit.

The ``auto`` pseudo-backend resolves to a concrete registry backend
*before* compilation by estimating, in abstract work units, what each
candidate's compile effort would be: circuit statistics (width, gate
counts) crossed with the target architecture's geometry and the
candidate's configured strategy traits (annealing budget, MIS restarts,
window size, SWAP-chain length).  The estimate is deliberately crude --
a few arithmetic operations per candidate, never a trial compilation --
because its only job is *ranking*: PowerMove's single-pass colouring
always beats Enola's restart loop by orders of magnitude (Table 3's
``T_comp`` columns), and the interesting decisions are feasibility ones
(a storage-requiring backend on a storage-less architecture is
infeasible, so ``auto`` on ``arch="no-storage"`` falls over to the
non-storage variant).

The choice is a pure function of (circuit, architecture name, AOD
count, hardware params): the same ``auto`` job resolves to the same
backend in every process, so cache keys stay content-addressed
(:func:`repro.engine.cache.job_cache_key` resolves ``auto`` through
:func:`choose_backend` before hashing) and an ``auto`` job shares its
cache entry with the equivalent explicitly-named job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.catalog import ARCHITECTURES
from ..hardware.geometry import ZonedArchitecture
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from .registry import REGISTRY

#: The registry name resolved through this module (not itself a
#: registered backend: it has no pipeline, only a choice rule).
AUTO_BACKEND = "auto"

#: Candidate backends ``auto`` ranks, in tie-break preference order.
AUTO_CANDIDATES = (
    "powermove",
    "powermove-nonstorage",
    "enola",
    "enola-windowed",
    "atomique",
)


@dataclass(frozen=True)
class CostEstimate:
    """One candidate's estimated compile effort.

    Attributes:
        backend: Registry backend name.
        cost: Abstract work units (comparable across candidates only).
        feasible: Whether the backend can target the architecture at
            all (storage-requiring backends need a storage zone).
    """

    backend: str
    cost: float
    feasible: bool


def _requires_storage(config) -> bool:
    """Whether a backend's effective default config needs a storage zone."""
    return bool(
        getattr(config, "use_storage", False)
        or getattr(config, "naive_storage", False)
    )


def estimate_cost(
    backend: str,
    circuit,
    architecture: ZonedArchitecture,
    num_aods: int = 1,
) -> CostEstimate:
    """Estimate one backend's compile effort on ``circuit``.

    The per-family formulas mirror where each compiler actually spends
    its time (n = qubits, G = gates, T = two-qubit gates, S = sites):

    * PowerMove family: annealing budget (zero by default) plus one
      nearest-empty-site search per routed qubit, ``T * sqrt(S)``,
      plus the linear colouring sweep ``G``.
    * Enola family: the annealing budget ``sa_iterations_per_qubit * n``
      plus the restart loop over conflict-graph extractions,
      ``mis_restarts * T * min(window, T)`` (the window bounds the
      per-extraction graph; unwindowed runs pay the full ``T``).
    * Atomique: its (smaller) annealing budget plus SWAP chains of
      expected length ``sqrt(n)`` at three physical CZs each.
    """
    spec = REGISTRY.get(backend)
    config = spec.effective_config(None, 0, num_aods)
    if _requires_storage(config) and not architecture.has_storage:
        return CostEstimate(backend=backend, cost=math.inf, feasible=False)
    n = circuit.num_qubits
    gates = circuit.num_gates
    twoq = circuit.num_two_qubit_gates
    sites = architecture.num_sites
    anneal = getattr(config, "sa_iterations_per_qubit", 0) * n
    restarts = getattr(config, "mis_restarts", None)
    if restarts is not None:
        window = twoq
        if getattr(config, "use_window", False):
            window = min(twoq, getattr(config, "window_size", twoq))
        cost = anneal + restarts * twoq * max(window, 1) + gates
    elif hasattr(config, "alpha"):
        cost = anneal + twoq * math.sqrt(sites) + gates
    else:
        chain = math.sqrt(max(n, 1))
        cost = anneal + 3.0 * twoq * chain + gates
    return CostEstimate(backend=backend, cost=cost, feasible=True)


def rank_backends(
    circuit,
    arch: str | None = None,
    num_aods: int = 1,
    params: HardwareParams = DEFAULT_PARAMS,
    candidates: tuple[str, ...] = AUTO_CANDIDATES,
) -> list[CostEstimate]:
    """All candidates' estimates, cheapest first (infeasible last).

    Ties break on candidate order, so the ranking -- and therefore
    :func:`choose_backend` -- is deterministic.
    """
    spec = ARCHITECTURES.get(arch if arch is not None else "paper")
    architecture = spec.build(circuit.num_qubits, num_aods, params)
    order = {name: index for index, name in enumerate(candidates)}
    estimates = [
        estimate_cost(name, circuit, architecture, num_aods)
        for name in candidates
    ]
    return sorted(
        estimates, key=lambda e: (not e.feasible, e.cost, order[e.backend])
    )


def choose_backend(
    circuit,
    arch: str | None = None,
    num_aods: int = 1,
    params: HardwareParams = DEFAULT_PARAMS,
    candidates: tuple[str, ...] = AUTO_CANDIDATES,
) -> str:
    """The cheapest feasible candidate for ``circuit`` on ``arch``."""
    ranking = rank_backends(circuit, arch, num_aods, params, candidates)
    best = ranking[0]
    if not best.feasible:
        raise ValueError(
            f"no feasible backend among {', '.join(candidates)} for "
            f"architecture {arch or 'paper'!r}"
        )
    return best.backend


__all__ = [
    "AUTO_BACKEND",
    "AUTO_CANDIDATES",
    "CostEstimate",
    "choose_backend",
    "estimate_cost",
    "rank_backends",
]
