"""PowerMove's schedule/route/batch passes (paper Sec. 4-6).

The monolithic ``PowerMoveCompiler.compile`` loop decomposes into three
passes with clean hand-offs:

* :class:`StageSchedulePass` (Sec. 4) -- per block, the greedy-colouring
  stage partition plus the zone-aware stage ordering;
* :class:`ContinuousRoutePass` (Sec. 5) -- per stage, the direct
  layout-to-layout transition, replayed against an evolving layout copy;
* :class:`CollMoveBatchPass` (Sec. 5.3 + Sec. 6) -- per stage, the 1Q
  moves grouped into AOD-compatible CollMoves and scheduled into ordered
  parallel batches, interleaved with the Rydberg stages.

The decomposition is bit-exact with the historical monolith: grouping
and batching read only each stage's move list, never the layout, so
hoisting them out of the routing loop cannot change any decision.
"""

from __future__ import annotations

from ..core.collmove_scheduler import schedule_coll_moves
from ..core.continuous_router import ContinuousRouter
from ..hardware.moves import group_moves
from ..schedule.instructions import RydbergStage
from ..utils.rng import make_rng
from .context import CompileContext
from .strategies import resolve_routing, resolve_stage_selection


class StageSchedulePass:
    """Stage Scheduler (Sec. 4): blocks -> ordered Rydberg stages.

    Resolved through the stage-selection registry; the default
    ``greedy-color`` entry reads ``alpha`` / ``use_storage`` /
    ``reorder_stages`` / ``stage_ordering`` off the config exactly as
    the historical inline call did.
    """

    name = "stage_schedule"

    def run(self, ctx: CompileContext) -> None:
        ctx.require("partition")
        strategy = resolve_stage_selection(ctx, "greedy-color")
        ctx.block_stages = [
            strategy.stages(block, ctx)
            for block in ctx.partition.blocks
        ]


class ContinuousRoutePass:
    """Continuous Router (Sec. 5): per-stage direct layout transitions.

    Routes every stage against a layout copy that evolves as each
    stage's moves are applied, mirroring execution order.  Draws its
    randomness from a private ``make_rng(config.seed)`` stream (the
    historical router stream, independent of the placement stream).
    The order each stage's pairs reach the router comes from the
    selected continuous-family routing strategy (default: gate order).
    """

    name = "continuous_route"

    def run(self, ctx: CompileContext) -> None:
        ctx.require("architecture", "initial_layout", "block_stages")
        cfg = ctx.config
        strategy = resolve_routing(ctx, "continuous")
        router = ContinuousRouter(
            ctx.architecture, cfg.use_storage, make_rng(cfg.seed)
        )
        layout = ctx.initial_layout.copy()
        routed_stages: list[list] = []
        total_moves = 0
        for stages in ctx.block_stages:
            per_block = []
            for stage in stages:
                pairs = strategy.stage_pairs(stage, layout)
                routed = router.route_stage(layout, pairs)
                layout.apply_moves(routed.moves)
                per_block.append(routed)
                total_moves += routed.num_moves
            routed_stages.append(per_block)
        ctx.routed_stages = routed_stages
        ctx.counters["num_single_moves"] = total_moves


class CollMoveBatchPass:
    """Coll-Move grouping + scheduling (Sec. 5.3, Sec. 6).

    Groups each stage's 1Q moves into CollMoves, schedules them into
    ordered parallel batches, and interleaves the batches with the
    Rydberg stage instructions, per block.
    """

    name = "collmove_batch"

    def run(self, ctx: CompileContext) -> None:
        ctx.require("block_stages", "routed_stages")
        cfg = ctx.config
        block_instructions: list[list] = []
        total_stages = 0
        total_coll_moves = 0
        for stages, routed_list in zip(ctx.block_stages, ctx.routed_stages):
            instructions: list = []
            for stage, routed in zip(stages, routed_list):
                groups = group_moves(
                    routed.moves,
                    distance_aware=cfg.distance_aware_grouping,
                )
                batches = schedule_coll_moves(
                    groups,
                    num_aods=cfg.num_aods,
                    prioritize_move_ins=cfg.intra_stage_ordering,
                )
                instructions.extend(batches)
                instructions.append(RydbergStage(gates=list(stage.gates)))
                total_stages += 1
                total_coll_moves += len(groups)
            block_instructions.append(instructions)
        ctx.block_instructions = block_instructions
        ctx.counters["num_stages"] = total_stages
        ctx.counters["num_coll_moves"] = total_coll_moves


def powermove_metadata(ctx: CompileContext) -> dict:
    """Historical PowerMove program metadata (key order preserved)."""
    cfg = ctx.config
    return {
        "num_blocks": ctx.partition.num_blocks,
        "num_stages": ctx.counters["num_stages"],
        "num_single_moves": ctx.counters["num_single_moves"],
        "num_coll_moves": ctx.counters["num_coll_moves"],
        "use_storage": cfg.use_storage,
        "num_aods": cfg.num_aods,
        "alpha": cfg.alpha,
    }


__all__ = [
    "CollMoveBatchPass",
    "ContinuousRoutePass",
    "StageSchedulePass",
    "powermove_metadata",
]
