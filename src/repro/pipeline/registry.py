"""The backend registry: names -> compiler pipelines.

Every compiler in the repository -- PowerMove with and without storage,
the Enola and Atomique baselines, and the paper's ablation variants --
is a :class:`BackendSpec`: a name, a :class:`~repro.pipeline.base.Pipeline`,
a config dataclass, and the rules turning a job's (override, seed,
num_aods) into the effective configuration.  The engine, the analysis
harness and the CLI all resolve compilers here, so adding a scenario is
one ``register`` call instead of another monolithic compiler class.

Quickstart:
    >>> from repro.pipeline import create_compiler
    >>> from repro.circuits.generators import bernstein_vazirani
    >>> result = create_compiler("powermove").compile(
    ...     bernstein_vazirani(6, seed=0)
    ... )
    >>> result.program.num_stages > 0
    True

See ``docs/architecture.md`` for the add-a-backend recipe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Any, Callable, Iterator

from ..baselines.atomique import AtomiqueConfig
from ..baselines.enola import EnolaConfig
from ..core.config import PowerMoveConfig
from ..hardware.catalog import ARCHITECTURES
from ..hardware.geometry import Zone
from ..hardware.params import DEFAULT_PARAMS, HardwareParams
from ..utils.rng import make_rng
from .atomique_passes import AtomiqueSwapRoutePass, atomique_metadata
from .base import Pipeline
from .context import CompileContext
from .enola_passes import (
    EnolaRevertRoutePass,
    EnolaStageSchedulePass,
    enola_metadata,
)
from .passes import (
    ArchitecturePass,
    BlockPartitionPass,
    EmitProgramPass,
    InitialLayoutPass,
    TranspilePass,
)
from .powermove_passes import (
    CollMoveBatchPass,
    ContinuousRoutePass,
    StageSchedulePass,
    powermove_metadata,
)
from .strategies import validate_strategies


class BackendError(ValueError):
    """Raised on unknown backend names or mismatched configurations."""


@dataclass(frozen=True)
class BackendSpec:
    """One registered compiler backend.

    Attributes:
        name: Registry key (``powermove``, ``enola``, ...).
        description: One-line summary for ``repro backends``.
        config_cls: The backend's configuration dataclass.
        pipeline: The (stateless, shareable) pass pipeline.
        variant_name: ``config -> str`` label stored in
            ``NAProgram.compiler_name``.
        effective_config: ``(override, seed, num_aods) -> config``; the
            job-to-config rule (which fields the backend forces).
        preserves_gate_stream: Whether the executed gate multiset equals
            the native circuit's (False for SWAP-inserting backends,
            whose programs are validated structurally only).
        strategies: Axis -> entry overrides this backend *forces*
            (``powermove-spiral`` forces ``placement=spiral``); job
            overrides are merged on top.  ``None`` forces nothing.
        strategy_axes: Axis -> entry map the backend resolves by default
            (forcing included) -- display-only, for ``repro backends``.
    """

    name: str
    description: str
    config_cls: type
    pipeline: Pipeline
    variant_name: Callable[[Any], str]
    effective_config: Callable[[Any | None, int, int], Any]
    preserves_gate_stream: bool = True
    strategies: Any = None
    strategy_axes: Any = None

    @property
    def config_knobs(self) -> dict[str, Any]:
        """Config field -> backend default value (after forcing rules)."""
        default = self.default_config()
        return {
            f.name: getattr(default, f.name)
            for f in dataclass_fields(self.config_cls)
        }

    def default_config(self) -> Any:
        """The effective configuration of a bare (seed-0, 1-AOD) job."""
        return self.effective_config(None, 0, 1)


class PipelineCompiler:
    """A backend bound to a configuration: the registry's compiler.

    Drop-in compatible with the historical compiler classes: exposes
    ``name``, ``config``, ``variant_name`` and ``compile``.  An explicit
    config is normalised through the backend's forcing rules, so e.g.
    ``create_compiler("powermove-nonstorage", PowerMoveConfig())``
    compiles without storage regardless of the override's
    ``use_storage`` -- the backend name always wins (the rules are
    idempotent, so already-forced configs pass through unchanged).
    """

    def __init__(
        self,
        spec: BackendSpec,
        config: Any | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> None:
        if config is not None and not isinstance(config, spec.config_cls):
            raise BackendError(
                f"backend {spec.name!r} expects a "
                f"{spec.config_cls.__name__}, got {type(config).__name__}"
            )
        self.spec = spec
        if config is None:
            self._config = spec.default_config()
        else:
            self._config = spec.effective_config(
                config, config.seed, getattr(config, "num_aods", 1)
            )
        self._params = params

    @property
    def name(self) -> str:
        """The backend's registry name."""
        return self.spec.name

    @property
    def config(self) -> Any:
        """Active configuration."""
        return self._config

    @property
    def params(self) -> HardwareParams:
        """Hardware constants."""
        return self._params

    @property
    def variant_name(self) -> str:
        """Scenario label used in reports and program documents."""
        return self.spec.variant_name(self._config)

    def compile(
        self,
        circuit,
        architecture=None,
        initial_layout=None,
        pass_cache=None,
        arch=None,
        strategies=None,
    ):
        """Compile ``circuit`` through the backend's pipeline.

        Returns the usual
        :class:`~repro.core.compiler.CompilationResult`; its ``stats``
        carry the program metadata plus per-pass wall-clock seconds
        under ``stats["pass_timings"]``.

        ``arch`` names an architecture-catalog entry to build the
        machine from (ignored when an explicit ``architecture`` is
        supplied); ``strategies`` maps strategy axes to registry entry
        names, merged over the backend's own forced entries.  Both are
        validated up front and enter the pass-memo content keys.

        ``pass_cache`` (any :class:`~repro.engine.cache.ProgramCache`)
        enables pass-level memoization: each pass's output is
        snapshotted under a chained content key, so a re-run -- or a run
        differing only in a downstream pass -- restores the cached
        prefix instead of recompiling it.  Hit/miss/store counters land
        in ``stats["pass_cache"]``.  An explicit ``architecture`` or
        ``initial_layout`` is not part of the content key, so
        memoization is skipped for such calls.
        """
        from ..core.compiler import CompilationResult

        start = time.perf_counter()
        merged = {**(self.spec.strategies or {}), **(strategies or {})}
        validate_strategies(merged)
        if arch is not None:
            ARCHITECTURES.get(arch)
        ctx = CompileContext(
            circuit=circuit,
            config=self._config,
            params=self._params,
            compiler_name=self.variant_name,
            rng=make_rng(self._config.seed),
            arch_name=arch,
            strategies=merged,
            architecture=architecture,
            initial_layout=initial_layout,
        )
        memo = None
        if (
            pass_cache is not None
            and architecture is None
            and initial_layout is None
        ):
            from ..engine.passmemo import PassMemo

            memo = PassMemo(pass_cache, self.spec.pipeline, ctx)
        ctx = self.spec.pipeline.run(ctx, memo=memo)
        compile_time = time.perf_counter() - start
        stats = dict(ctx.program.metadata)
        stats["pass_timings"] = dict(ctx.pass_timings)
        stats["pass_spans"] = [
            (name, start_s, end_s)
            for name, start_s, end_s in ctx.pass_spans
        ]
        if memo is not None:
            stats["pass_cache"] = memo.stats_doc()
        return CompilationResult(
            program=ctx.program,
            compile_time=compile_time,
            native_circuit=ctx.native,
            stats=stats,
        )


class BackendRegistry:
    """Name -> :class:`BackendSpec` mapping with registration order."""

    def __init__(self) -> None:
        self._specs: dict[str, BackendSpec] = {}

    def register(self, spec: BackendSpec, replace: bool = False) -> None:
        """Add a backend; re-registration requires ``replace=True``."""
        if spec.name in self._specs and not replace:
            raise BackendError(f"backend {spec.name!r} already registered")
        self._specs[spec.name] = spec

    def get(self, name: str) -> BackendSpec:
        """Look up a backend; unknown names raise :class:`BackendError`."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self._specs)
            raise BackendError(
                f"unknown backend {name!r}; known: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered backend names, in registration order."""
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[BackendSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def create(
        self,
        name: str,
        config: Any | None = None,
        params: HardwareParams = DEFAULT_PARAMS,
    ) -> PipelineCompiler:
        """Instantiate a compiler for backend ``name``."""
        return PipelineCompiler(self.get(name), config, params)


# ----------------------------------------------------------------------
# Default pipelines
# ----------------------------------------------------------------------

POWERMOVE_PIPELINE = Pipeline(
    [
        TranspilePass(),
        BlockPartitionPass(),
        ArchitecturePass(
            with_storage=lambda cfg: cfg.use_storage,
            num_aods=lambda cfg: cfg.num_aods,
            storage_error="with-storage compilation needs a storage zone",
        ),
        InitialLayoutPass(
            home_zone=lambda cfg: (
                Zone.STORAGE if cfg.use_storage else Zone.COMPUTE
            ),
            annealed=lambda cfg: cfg.annealed_placement,
            fresh_rng=True,
        ),
        StageSchedulePass(),
        ContinuousRoutePass(),
        CollMoveBatchPass(),
        EmitProgramPass(powermove_metadata),
    ],
    name="powermove",
)

ENOLA_PIPELINE = Pipeline(
    [
        TranspilePass(),
        BlockPartitionPass(),
        ArchitecturePass(
            with_storage=lambda cfg: cfg.naive_storage,
            num_aods=lambda cfg: cfg.num_aods,
            storage_error="naive_storage needs a storage zone",
        ),
        InitialLayoutPass(
            home_zone=lambda cfg: (
                Zone.STORAGE if cfg.naive_storage else Zone.COMPUTE
            ),
            annealed=lambda cfg: cfg.sa_iterations_per_qubit > 0,
            iterations=lambda cfg: cfg.sa_iterations_per_qubit,
        ),
        EnolaStageSchedulePass(),
        EnolaRevertRoutePass(),
        EmitProgramPass(enola_metadata),
    ],
    name="enola",
)

ATOMIQUE_PIPELINE = Pipeline(
    [
        TranspilePass(),
        BlockPartitionPass(),
        ArchitecturePass(with_storage=lambda cfg: False),
        InitialLayoutPass(
            home_zone=lambda cfg: Zone.COMPUTE,
            annealed=lambda cfg: cfg.sa_iterations_per_qubit > 0,
            iterations=lambda cfg: cfg.sa_iterations_per_qubit,
        ),
        AtomiqueSwapRoutePass(),
        EmitProgramPass(atomique_metadata),
    ],
    name="atomique",
)


def _powermove_variant_name(config: PowerMoveConfig) -> str:
    suffix = "with-storage" if config.use_storage else "non-storage"
    return f"powermove[{suffix}]"


def _enola_variant_name(config: EnolaConfig) -> str:
    # No "[windowed]" variant label: the compiler name feeds the
    # program digest, and a use_window run whose blocks all fit under
    # the window is bit-identical to the unwindowed run by contract.
    # Windowing that actually fired is recorded in program metadata.
    if config.naive_storage:
        return "enola[naive-storage]"
    return "enola"


def _powermove_effective(
    use_storage: bool, **forced: Any
) -> Callable[[PowerMoveConfig | None, int, int], PowerMoveConfig]:
    def effective(
        override: PowerMoveConfig | None, seed: int, num_aods: int
    ) -> PowerMoveConfig:
        base = override if override is not None else PowerMoveConfig()
        return replace(
            base,
            use_storage=use_storage,
            num_aods=num_aods,
            seed=seed,
            **forced,
        )

    return effective


def _enola_effective(
    override: EnolaConfig | None, seed: int, num_aods: int
) -> EnolaConfig:
    # Historical rule: an explicit Enola override is used verbatim.
    if override is not None:
        return override
    return EnolaConfig(seed=seed, num_aods=num_aods)


def _enola_naive_effective(
    override: EnolaConfig | None, seed: int, num_aods: int
) -> EnolaConfig:
    base = _enola_effective(override, seed, num_aods)
    return replace(base, naive_storage=True)


def _enola_windowed_effective(
    override: EnolaConfig | None, seed: int, num_aods: int
) -> EnolaConfig:
    base = _enola_effective(override, seed, num_aods)
    return replace(base, use_window=True)


def _atomique_effective(
    override: AtomiqueConfig | None, seed: int, num_aods: int
) -> AtomiqueConfig:
    if override is not None:
        return override
    return AtomiqueConfig(seed=seed)


#: The process-wide default registry.
REGISTRY = BackendRegistry()


#: Default axis -> entry maps per pipeline family (display-only; the
#: passes resolve the same defaults from each backend's config).
_POWERMOVE_AXES = {
    "placement": "row-major",
    "stage-selection": "greedy-color",
    "routing": "continuous",
}
_ENOLA_AXES = {
    "placement": "annealed",
    "stage-selection": "mis",
    "routing": "revert",
}
_ATOMIQUE_AXES = {
    "placement": "annealed",
    "routing": "swap",
}


def _register_defaults(registry: BackendRegistry) -> None:
    def powermove_spec(
        name: str,
        description: str,
        use_storage: bool,
        strategies: dict[str, str] | None = None,
        **forced: Any,
    ) -> BackendSpec:
        return BackendSpec(
            name=name,
            description=description,
            config_cls=PowerMoveConfig,
            pipeline=POWERMOVE_PIPELINE,
            variant_name=_powermove_variant_name,
            effective_config=_powermove_effective(use_storage, **forced),
            strategies=strategies,
            strategy_axes={**_POWERMOVE_AXES, **(strategies or {})},
        )

    registry.register(
        powermove_spec(
            "powermove",
            "PowerMove with storage-zone integration (paper Sec. 4-6)",
            use_storage=True,
        )
    )
    registry.register(
        powermove_spec(
            "powermove-nonstorage",
            "PowerMove continuous router only, no storage zone",
            use_storage=False,
        )
    )
    registry.register(
        powermove_spec(
            "powermove-noreorder",
            "Ablation A1: zone-aware stage reordering disabled",
            use_storage=True,
            reorder_stages=False,
        )
    )
    registry.register(
        powermove_spec(
            "powermove-fifo-grouping",
            "Ablation A2: FIFO CollMove grouping (not distance-aware)",
            use_storage=True,
            distance_aware_grouping=False,
        )
    )
    registry.register(
        powermove_spec(
            "powermove-nointra",
            "Ablation A3: intra-stage move-in-first ordering disabled",
            use_storage=True,
            intra_stage_ordering=False,
        )
    )
    registry.register(
        powermove_spec(
            "powermove-spiral",
            "PowerMove with interaction-weighted spiral placement",
            use_storage=True,
            strategies={"placement": "spiral"},
        )
    )
    registry.register(
        powermove_spec(
            "powermove-reuse",
            "PowerMove with reuse-maximising stage ordering",
            use_storage=True,
            strategies={"stage-selection": "reuse-aware"},
        )
    )
    registry.register(
        powermove_spec(
            "powermove-sorted-route",
            "PowerMove routing each stage's closest pairs first",
            use_storage=True,
            strategies={"routing": "continuous-sorted"},
        )
    )
    registry.register(
        BackendSpec(
            name="enola",
            description="Enola baseline: MIS stages, revert routing",
            config_cls=EnolaConfig,
            pipeline=ENOLA_PIPELINE,
            variant_name=_enola_variant_name,
            effective_config=_enola_effective,
            strategy_axes=dict(_ENOLA_AXES),
        )
    )
    registry.register(
        BackendSpec(
            name="enola-naive-storage",
            description=(
                "Fig. 3(e)(f) strawman: Enola revert scheme on a zoned "
                "machine"
            ),
            config_cls=EnolaConfig,
            pipeline=ENOLA_PIPELINE,
            variant_name=_enola_variant_name,
            effective_config=_enola_naive_effective,
            strategy_axes=dict(_ENOLA_AXES),
        )
    )
    registry.register(
        BackendSpec(
            name="enola-windowed",
            description=(
                "Enola with sliding-window MIS (its 10k-qubit harness "
                "mode); exact below the window size"
            ),
            config_cls=EnolaConfig,
            pipeline=ENOLA_PIPELINE,
            variant_name=_enola_variant_name,
            effective_config=_enola_windowed_effective,
            strategy_axes={**_ENOLA_AXES, "stage-selection": "mis-windowed"},
        )
    )
    registry.register(
        BackendSpec(
            name="atomique",
            description=(
                "Atomique-like fixed-array baseline: SWAP-chain routing"
            ),
            config_cls=AtomiqueConfig,
            pipeline=ATOMIQUE_PIPELINE,
            variant_name=lambda cfg: "atomique-like",
            effective_config=_atomique_effective,
            preserves_gate_stream=False,
            strategy_axes=dict(_ATOMIQUE_AXES),
        )
    )


_register_defaults(REGISTRY)


def get_backend(name: str) -> BackendSpec:
    """Look up ``name`` in the default registry."""
    return REGISTRY.get(name)


def available_backends() -> tuple[str, ...]:
    """Names registered in the default registry, in registration order."""
    return REGISTRY.names()


def create_compiler(
    name: str,
    config: Any | None = None,
    params: HardwareParams = DEFAULT_PARAMS,
) -> PipelineCompiler:
    """Instantiate a compiler for ``name`` from the default registry."""
    return REGISTRY.create(name, config, params)


__all__ = [
    "ATOMIQUE_PIPELINE",
    "BackendError",
    "BackendRegistry",
    "BackendSpec",
    "ENOLA_PIPELINE",
    "POWERMOVE_PIPELINE",
    "PipelineCompiler",
    "REGISTRY",
    "available_backends",
    "create_compiler",
    "get_backend",
]
