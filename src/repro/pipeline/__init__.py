"""Pluggable compiler-pass pipeline and backend registry.

The compilation skeleton shared by every compiler in the repository:
:class:`~repro.pipeline.base.Pass` (typed
:class:`~repro.pipeline.context.CompileContext` in, context out),
:class:`~repro.pipeline.base.Pipeline` (ordered passes with per-pass
timing), and the :class:`~repro.pipeline.registry.BackendRegistry`
mapping backend names (``powermove``, ``enola``, ``atomique``, ablation
variants) to pipelines.  See ``docs/architecture.md``.
"""

from .atomique_passes import AtomiqueSwapRoutePass
from .base import Pass, Pipeline
from .context import CompileContext
from .enola_passes import EnolaRevertRoutePass, EnolaStageSchedulePass
from .passes import (
    ArchitecturePass,
    BlockPartitionPass,
    EmitProgramPass,
    InitialLayoutPass,
    TranspilePass,
)
from .powermove_passes import (
    CollMoveBatchPass,
    ContinuousRoutePass,
    StageSchedulePass,
)
from .costmodel import (
    AUTO_BACKEND,
    AUTO_CANDIDATES,
    CostEstimate,
    choose_backend,
    estimate_cost,
    rank_backends,
)
from .registry import (
    REGISTRY,
    BackendError,
    BackendRegistry,
    BackendSpec,
    PipelineCompiler,
    available_backends,
    create_compiler,
    get_backend,
)
from .strategies import (
    PLACEMENT_STRATEGIES,
    ROUTING_STRATEGIES,
    STAGE_SELECTION_STRATEGIES,
    STRATEGY_AXES,
    PlacementStrategy,
    RoutingStrategy,
    StageSelectionStrategy,
    StrategyError,
    StrategyRegistry,
    validate_strategies,
)

__all__ = [
    "ArchitecturePass",
    "AtomiqueSwapRoutePass",
    "AUTO_BACKEND",
    "AUTO_CANDIDATES",
    "BackendError",
    "BackendRegistry",
    "BackendSpec",
    "BlockPartitionPass",
    "CollMoveBatchPass",
    "CompileContext",
    "ContinuousRoutePass",
    "CostEstimate",
    "EmitProgramPass",
    "EnolaRevertRoutePass",
    "EnolaStageSchedulePass",
    "InitialLayoutPass",
    "Pass",
    "Pipeline",
    "PipelineCompiler",
    "PLACEMENT_STRATEGIES",
    "PlacementStrategy",
    "REGISTRY",
    "ROUTING_STRATEGIES",
    "RoutingStrategy",
    "STAGE_SELECTION_STRATEGIES",
    "STRATEGY_AXES",
    "StageSchedulePass",
    "StageSelectionStrategy",
    "StrategyError",
    "StrategyRegistry",
    "TranspilePass",
    "available_backends",
    "choose_backend",
    "create_compiler",
    "estimate_cost",
    "get_backend",
    "rank_backends",
    "validate_strategies",
]
