"""Pluggable compiler-pass pipeline and backend registry.

The compilation skeleton shared by every compiler in the repository:
:class:`~repro.pipeline.base.Pass` (typed
:class:`~repro.pipeline.context.CompileContext` in, context out),
:class:`~repro.pipeline.base.Pipeline` (ordered passes with per-pass
timing), and the :class:`~repro.pipeline.registry.BackendRegistry`
mapping backend names (``powermove``, ``enola``, ``atomique``, ablation
variants) to pipelines.  See ``docs/architecture.md``.
"""

from .atomique_passes import AtomiqueSwapRoutePass
from .base import Pass, Pipeline
from .context import CompileContext
from .enola_passes import EnolaRevertRoutePass, EnolaStageSchedulePass
from .passes import (
    ArchitecturePass,
    BlockPartitionPass,
    EmitProgramPass,
    InitialLayoutPass,
    TranspilePass,
)
from .powermove_passes import (
    CollMoveBatchPass,
    ContinuousRoutePass,
    StageSchedulePass,
)
from .registry import (
    REGISTRY,
    BackendError,
    BackendRegistry,
    BackendSpec,
    PipelineCompiler,
    available_backends,
    create_compiler,
    get_backend,
)

__all__ = [
    "ArchitecturePass",
    "AtomiqueSwapRoutePass",
    "BackendError",
    "BackendRegistry",
    "BackendSpec",
    "BlockPartitionPass",
    "CollMoveBatchPass",
    "CompileContext",
    "ContinuousRoutePass",
    "EmitProgramPass",
    "EnolaRevertRoutePass",
    "EnolaStageSchedulePass",
    "InitialLayoutPass",
    "Pass",
    "Pipeline",
    "PipelineCompiler",
    "REGISTRY",
    "StageSchedulePass",
    "TranspilePass",
    "available_backends",
    "create_compiler",
    "get_backend",
]
