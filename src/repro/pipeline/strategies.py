"""Strategy registries: pluggable placement / stage-selection / routing.

The compilation pipeline varies along three axes the follow-on
literature keeps swapping independently: how qubits are initially
*placed*, how a commuting block's gates are grouped into Rydberg
*stages*, and how each stage's connectivity is *routed*.  This module
names each axis as a protocol-shaped dataclass with a registry mirroring
:class:`~repro.pipeline.registry.BackendRegistry`, and registers today's
behaviours as the default entries -- the passes resolve strategies by
name, so the historical backends compile **bit-identically** through
this layer (the golden-digest pin in ``tests/test_golden_digests.py``
proves it).

Axes and their built-in entries:

==================  ===================================================
``placement``       ``row-major`` (PowerMove's default), ``annealed``
                    (Enola/Atomique's simulated annealing), ``spiral``
                    (new: interaction-weighted centre-out, no RNG).
``stage-selection`` ``greedy-color`` (PowerMove Sec. 4), ``mis`` /
                    ``mis-windowed`` (Enola's best-of-R randomised MIS,
                    exhaustive or sliding-window), ``reuse-aware``
                    (new: greedy colouring + overlap-maximising stage
                    order, after Lin/Tan/Cong arXiv:2411.11784).
``routing``         ``continuous`` (PowerMove), ``continuous-sorted``
                    (new: route each stage's closest pairs first),
                    ``revert`` (Enola's out-excite-back), ``swap``
                    (Atomique's SWAP chains).  Routing entries carry a
                    ``family`` tag; a pipeline only accepts strategies
                    of its own family (a revert-family entry cannot
                    drive the continuous router).
==================  ===================================================

Selection is per job: a backend may force entries
(:attr:`~repro.pipeline.registry.BackendSpec.strategies`, e.g. the
``powermove-reuse`` variant) and a job/manifest may override axes via
``CompileJob.strategies`` -- both enter the compilation cache key.

Strategy callables read optional config knobs with ``getattr`` defaults
(``alpha``, ``mis_restarts``, ``window_size``, ...), so an entry applied
to a backend whose config lacks the knob falls back to the entry's
documented default instead of crashing.

See ``docs/strategies.md`` for the add-an-entry recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from ..baselines.mis import mis_stage_partition
from ..baselines.placement import (
    annealed_layout,
    row_major_layout,
    spiral_layout,
)
from ..core.stage_scheduler import (
    order_stages_reuse,
    partition_stages,
    schedule_block,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import CompileContext


class StrategyError(ValueError):
    """Raised on unknown strategy names, axes or family mismatches."""


class StrategyRegistry:
    """Name -> strategy entry mapping for one axis, registration order."""

    def __init__(self, axis: str) -> None:
        self.axis = axis
        self._entries: dict[str, Any] = {}

    def register(self, entry: Any, replace: bool = False) -> None:
        """Add an entry; re-registration requires ``replace=True``."""
        if entry.name in self._entries and not replace:
            raise StrategyError(
                f"{self.axis} strategy {entry.name!r} already registered"
            )
        self._entries[entry.name] = entry

    def get(self, name: str) -> Any:
        """Look up an entry; unknown names raise :class:`StrategyError`."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self._entries)
            raise StrategyError(
                f"unknown {self.axis} strategy {name!r}; known: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class PlacementStrategy:
    """One initial-placement algorithm.

    ``place(architecture, circuit, zone, rng, iterations)`` returns the
    starting :class:`~repro.hardware.layout.Layout`.  ``rng`` is the
    stream the calling pass selected (private per-pass for PowerMove,
    the shared context stream for Enola -- the stream discipline lives
    in the pass, not here); deterministic entries must ignore it
    without consuming any values.  ``iterations`` is the backend's
    per-qubit budget, or ``None`` for the entry's own default.
    """

    name: str
    description: str
    place: Callable[..., Any]
    uses_rng: bool = False


@dataclass(frozen=True)
class StageSelectionStrategy:
    """One block-to-stages scheduler.

    ``stages(block, ctx)`` partitions (and possibly orders) one
    commuting CZ block into Rydberg stages, reading knobs from
    ``ctx.config`` (with ``getattr`` defaults) and randomness from
    ``ctx.rng`` only.
    """

    name: str
    description: str
    stages: Callable[..., Any]
    uses_rng: bool = False


@dataclass(frozen=True)
class RoutingStrategy:
    """One routing behaviour, tagged with its pipeline family.

    Only entries of a pipeline's own family are accepted by its route
    pass (``continuous`` for PowerMove, ``revert`` for Enola, ``swap``
    for Atomique).  Family hooks:

    * ``stage_pairs(stage, layout)`` -- continuous family: the qubit
      pairs handed to the continuous router, in routing order;
    * ``mover_anchor(qubits)`` -- revert family: which qubit of a gate
      shuttles (mover) and which stays (anchor).
    """

    name: str
    description: str
    family: str
    stage_pairs: Callable[..., Any] | None = None
    mover_anchor: Callable[..., Any] | None = None


# ----------------------------------------------------------------------
# Default entries
# ----------------------------------------------------------------------


def _place_row_major(architecture, circuit, zone, rng, iterations):
    return row_major_layout(architecture, circuit.num_qubits, zone)


def _place_annealed(architecture, circuit, zone, rng, iterations):
    # Bit-compat: the historical pass passed iterations_per_qubit only
    # when the backend configured a budget, keeping annealed_layout's
    # own default otherwise.
    kwargs: dict[str, Any] = {}
    if iterations is not None:
        kwargs["iterations_per_qubit"] = iterations
    return annealed_layout(
        architecture, circuit, zone=zone, rng=rng, **kwargs
    )


def _place_spiral(architecture, circuit, zone, rng, iterations):
    return spiral_layout(architecture, circuit, zone)


def _stages_greedy_color(block, ctx: "CompileContext"):
    cfg = ctx.config
    return schedule_block(
        block,
        alpha=getattr(cfg, "alpha", 0.5),
        reorder=(
            getattr(cfg, "use_storage", False)
            and getattr(cfg, "reorder_stages", True)
        ),
        ordering=getattr(cfg, "stage_ordering", "saturation"),
    )


def _stages_mis(block, ctx: "CompileContext"):
    return mis_stage_partition(
        block, ctx.rng, getattr(ctx.config, "mis_restarts", 5)
    )


def _stages_mis_windowed(block, ctx: "CompileContext"):
    return mis_stage_partition(
        block,
        ctx.rng,
        getattr(ctx.config, "mis_restarts", 5),
        window_size=getattr(ctx.config, "window_size", 1000),
    )


def _stages_reuse_aware(block, ctx: "CompileContext"):
    stages = partition_stages(
        block, ordering=getattr(ctx.config, "stage_ordering", "saturation")
    )
    return order_stages_reuse(stages)


def _pairs_in_gate_order(stage, layout):
    return [(g.qubits[0], g.qubits[1]) for g in stage.gates]


def _pairs_closest_first(stage, layout):
    pairs = _pairs_in_gate_order(stage, layout)

    def squared_distance(pair):
        xa, ya = layout.position_of(pair[0])
        xb, yb = layout.position_of(pair[1])
        return (xa - xb) ** 2 + (ya - yb) ** 2

    # Stable sort: equally distant pairs keep gate order.
    return sorted(pairs, key=squared_distance)


#: The process-wide default registries, one per axis.
PLACEMENT_STRATEGIES = StrategyRegistry("placement")
STAGE_SELECTION_STRATEGIES = StrategyRegistry("stage-selection")
ROUTING_STRATEGIES = StrategyRegistry("routing")

#: Axis name -> its registry (the valid ``strategies`` mapping keys).
STRATEGY_AXES: Mapping[str, StrategyRegistry] = {
    "placement": PLACEMENT_STRATEGIES,
    "stage-selection": STAGE_SELECTION_STRATEGIES,
    "routing": ROUTING_STRATEGIES,
}


def _register_defaults() -> None:
    PLACEMENT_STRATEGIES.register(
        PlacementStrategy(
            name="row-major",
            description="Qubit i on the i-th site of the home zone",
            place=_place_row_major,
        )
    )
    PLACEMENT_STRATEGIES.register(
        PlacementStrategy(
            name="annealed",
            description=(
                "Simulated annealing minimising weighted pair distance "
                "(Enola's placement)"
            ),
            place=_place_annealed,
            uses_rng=True,
        )
    )
    PLACEMENT_STRATEGIES.register(
        PlacementStrategy(
            name="spiral",
            description=(
                "Interaction-weighted centre-out placement: hottest "
                "qubits nearest the zone centre (deterministic)"
            ),
            place=_place_spiral,
        )
    )
    STAGE_SELECTION_STRATEGIES.register(
        StageSelectionStrategy(
            name="greedy-color",
            description=(
                "Greedy conflict-graph colouring plus zone-aware stage "
                "ordering (paper Sec. 4)"
            ),
            stages=_stages_greedy_color,
        )
    )
    STAGE_SELECTION_STRATEGIES.register(
        StageSelectionStrategy(
            name="mis",
            description=(
                "Best-of-R randomised maximal-independent-set "
                "extraction (Enola's scheduler)"
            ),
            stages=_stages_mis,
            uses_rng=True,
        )
    )
    STAGE_SELECTION_STRATEGIES.register(
        StageSelectionStrategy(
            name="mis-windowed",
            description=(
                "MIS extraction over a sliding gate window; exact below "
                "the window size"
            ),
            stages=_stages_mis_windowed,
            uses_rng=True,
        )
    )
    STAGE_SELECTION_STRATEGIES.register(
        StageSelectionStrategy(
            name="reuse-aware",
            description=(
                "Greedy colouring ordered to maximise qubit reuse "
                "between consecutive stages (arXiv:2411.11784)"
            ),
            stages=_stages_reuse_aware,
        )
    )
    ROUTING_STRATEGIES.register(
        RoutingStrategy(
            name="continuous",
            description=(
                "Direct layout-to-layout transitions, pairs in gate "
                "order (paper Sec. 5)"
            ),
            family="continuous",
            stage_pairs=_pairs_in_gate_order,
        )
    )
    ROUTING_STRATEGIES.register(
        RoutingStrategy(
            name="continuous-sorted",
            description=(
                "Continuous routing with each stage's closest pairs "
                "routed first"
            ),
            family="continuous",
            stage_pairs=_pairs_closest_first,
        )
    )
    ROUTING_STRATEGIES.register(
        RoutingStrategy(
            name="revert",
            description=(
                "Enola's out-excite-back scheme; the lower-id qubit "
                "shuttles to its partner"
            ),
            family="revert",
            mover_anchor=lambda qubits: tuple(sorted(qubits)),
        )
    )
    ROUTING_STRATEGIES.register(
        RoutingStrategy(
            name="swap",
            description=(
                "Atomique's fixed-array SWAP-chain routing (no "
                "movement between sites)"
            ),
            family="swap",
        )
    )


_register_defaults()


def validate_strategies(strategies: Mapping[str, str]) -> None:
    """Check a ``{axis: entry}`` mapping against the registries.

    Raises :class:`StrategyError` naming the first unknown axis or
    entry; an empty mapping is valid.
    """
    for axis, name in strategies.items():
        registry = STRATEGY_AXES.get(axis)
        if registry is None:
            raise StrategyError(
                f"unknown strategy axis {axis!r}; "
                f"known: {', '.join(STRATEGY_AXES)}"
            )
        registry.get(name)


def resolve_placement(
    ctx: "CompileContext", default: str
) -> PlacementStrategy:
    """The placement entry a compilation selected (or the default)."""
    return PLACEMENT_STRATEGIES.get(
        ctx.strategies.get("placement", default)
    )


def resolve_stage_selection(
    ctx: "CompileContext", default: str
) -> StageSelectionStrategy:
    """The stage-selection entry a compilation selected (or default)."""
    return STAGE_SELECTION_STRATEGIES.get(
        ctx.strategies.get("stage-selection", default)
    )


def resolve_routing(ctx: "CompileContext", default: str) -> RoutingStrategy:
    """The routing entry a compilation selected, family-checked.

    The pipeline's default entry defines the required family; selecting
    an entry of another family (e.g. ``revert`` on the continuous
    router) raises :class:`StrategyError` instead of mis-routing.
    """
    required = ROUTING_STRATEGIES.get(default).family
    strategy = ROUTING_STRATEGIES.get(
        ctx.strategies.get("routing", default)
    )
    if strategy.family != required:
        raise StrategyError(
            f"routing strategy {strategy.name!r} is of family "
            f"{strategy.family!r}; this pipeline needs family "
            f"{required!r}"
        )
    return strategy


__all__ = [
    "PLACEMENT_STRATEGIES",
    "ROUTING_STRATEGIES",
    "STAGE_SELECTION_STRATEGIES",
    "STRATEGY_AXES",
    "PlacementStrategy",
    "RoutingStrategy",
    "StageSelectionStrategy",
    "StrategyError",
    "StrategyRegistry",
    "resolve_placement",
    "resolve_routing",
    "resolve_stage_selection",
    "validate_strategies",
]
