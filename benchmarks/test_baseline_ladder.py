"""Baseline ladder: Atomique-style < Enola < PowerMove (Sec. 3.1 / 7.1).

The paper justifies comparing only against Enola by citing Enola's 779x
two-qubit-fidelity advantage over Atomique (SWAP insertion).  This bench
reproduces the whole ladder inside one hardware model and records every
rung's driver metrics.
"""

from __future__ import annotations

from repro.baselines import (
    AtomiqueConfig,
    AtomiqueLikeCompiler,
    EnolaCompiler,
)
from repro.circuits.generators import qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program

from conftest import BENCH_ENOLA


def test_three_compiler_ladder(benchmark):
    circuit = qaoa_regular(16, degree=3, seed=0)

    def run():
        atomique = AtomiqueLikeCompiler(
            AtomiqueConfig(seed=0, sa_iterations_per_qubit=30)
        ).compile(circuit)
        enola = EnolaCompiler(BENCH_ENOLA).compile(circuit)
        pm = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(circuit)
        return {
            "atomique": (atomique.program, evaluate_program(atomique.program)),
            "enola": (enola.program, evaluate_program(enola.program)),
            "pm_with_storage": (pm.program, evaluate_program(pm.program)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    fid = {k: rep.total for k, (_, rep) in results.items()}
    two_q = {k: rep.two_qubit for k, (_, rep) in results.items()}
    g2 = {k: prog.num_two_qubit_gates for k, (prog, _) in results.items()}

    # The ladder: each generation of compiler improves on the last.
    assert fid["atomique"] < fid["enola"] < fid["pm_with_storage"]
    # The Atomique rung is driven by inserted SWAP gates (f2^g2 term).
    assert g2["atomique"] > g2["enola"] == g2["pm_with_storage"]
    assert two_q["atomique"] < two_q["enola"]

    benchmark.extra_info.update(
        {
            "fidelity": fid,
            "two_qubit_component": two_q,
            "executed_2q_gates": g2,
            "enola_vs_atomique_2q_ratio": two_q["enola"] / two_q["atomique"],
        }
    )
