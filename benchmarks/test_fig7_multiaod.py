"""E3 -- Figure 7: multi-AOD acceleration.

The timed body compiles PowerMove with-storage under 1..4 AOD arrays on
one representative benchmark per family (small sizes).  Shape assertions:
execution time is non-increasing and fidelity non-decreasing in the AOD
count, and transfer counts are invariant (Sec. 6.2's claim).
"""

from __future__ import annotations

import pytest

from repro.analysis import figure7_series

AOD_COUNTS = (1, 2, 3, 4)
FIG7_BENCH_KEYS = ("QAOA-regular3-30", "QSIM-rand-0.3-10", "BV-14")


@pytest.mark.parametrize("key", FIG7_BENCH_KEYS)
def test_figure7_aod_sweep(benchmark, key):
    def run():
        return figure7_series(
            keys=(key,), aod_counts=AOD_COUNTS, seed=0, validate=False
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    texe = series.texe_us[key]
    fidelity = series.fidelity[key]
    for earlier, later in zip(texe, texe[1:]):
        assert later <= earlier + 1e-9, "more AODs must not slow execution"
    for earlier, later in zip(fidelity, fidelity[1:]):
        assert later >= earlier - 1e-12, "more AODs must not hurt fidelity"

    benchmark.extra_info.update(
        {
            "benchmark": key,
            "aod_counts": list(AOD_COUNTS),
            "texe_us": texe,
            "fidelity": fidelity,
            "speedup_4aod": texe[0] / texe[-1],
        }
    )
