#!/usr/bin/env python
"""Compare a pytest-benchmark JSON export against a committed baseline.

CI's ``bench-smoke`` job runs the benchmark harness with
``--benchmark-json=bench.json`` and calls::

    python benchmarks/compare_bench.py benchmarks/baseline.json \\
        bench.json --max-ratio 2.0

A benchmark *regresses* when its mean exceeds ``max-ratio`` times the
baseline mean; any regression fails the job (exit 1).  The threshold is
deliberately loose -- CI runners differ machine to machine -- so only
step-function slowdowns (an accidental O(n^2), a dropped cache) trip
it, not noise.

Benchmarks present on only one side are reported but never fail the
run: new benchmarks have no baseline yet, and removed ones have no
measurement.  Regenerate the committed baseline after intentional
performance changes::

    PYTHONPATH=src python -m pytest benchmarks -q \\
        --benchmark-json=bench.json
    python benchmarks/compare_bench.py --write-baseline \\
        benchmarks/baseline.json bench.json

The baseline file is the slimmed ``{"benchmarks": {fullname: mean}}``
form (stable across pytest-benchmark versions, reviewable in a diff);
the comparison accepts both the slim form and a raw export.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    """``fullname -> mean seconds`` from a slim baseline or raw export."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    benchmarks = doc.get("benchmarks")
    if isinstance(benchmarks, dict):  # slim baseline form
        return {name: float(mean) for name, mean in benchmarks.items()}
    if isinstance(benchmarks, list):  # raw pytest-benchmark export
        return {
            bench["fullname"]: float(bench["stats"]["mean"])
            for bench in benchmarks
        }
    raise SystemExit(f"error: {path} is not a benchmark document")


def write_baseline(out_path: str, means: dict[str, float]) -> None:
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {"benchmarks": dict(sorted(means.items()))},
            handle,
            indent=1,
        )
        handle.write("\n")


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    max_ratio: float,
) -> int:
    regressions = []
    shared = sorted(set(baseline) & set(current))
    for name in shared:
        ratio = (
            current[name] / baseline[name]
            if baseline[name] > 0
            else float("inf")
        )
        flag = " <-- REGRESSION" if ratio > max_ratio else ""
        print(
            f"{ratio:7.2f}x  {current[name] * 1e3:10.3f} ms "
            f"(baseline {baseline[name] * 1e3:10.3f} ms)  {name}{flag}"
        )
        if ratio > max_ratio:
            regressions.append((name, ratio))
    for name in sorted(set(current) - set(baseline)):
        print(f"   new    {current[name] * 1e3:10.3f} ms  {name}")
    for name in sorted(set(baseline) - set(current)):
        print(f" gone     (baseline only)  {name}")
    print(
        f"\n{len(shared)} compared, {len(regressions)} regression(s) "
        f"over {max_ratio:.1f}x"
    )
    if regressions:
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "current", help="fresh pytest-benchmark JSON export"
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when mean exceeds this multiple of the baseline "
        "(default 2.0)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="slim CURRENT into a new baseline at BASELINE instead of "
        "comparing",
    )
    args = parser.parse_args(argv)
    if args.write_baseline:
        means = load_means(args.current)
        write_baseline(args.baseline, means)
        print(
            f"wrote {len(means)} benchmark means -> {args.baseline}"
        )
        return 0
    return compare(
        load_means(args.baseline),
        load_means(args.current),
        args.max_ratio,
    )


if __name__ == "__main__":
    sys.exit(main())
