"""E0 -- Table 2: benchmark and zone configurations.

Regenerates the floor-plan table and times suite construction (cheap; the
point is the printed artefact, checked against the paper's values).
"""

from __future__ import annotations

from repro.analysis import render_table2
from repro.benchsuite import SUITE, table2_rows


def test_table2_rows(benchmark):
    rows = benchmark(table2_rows)
    assert len(rows) == 23
    by_key = {(r["name"], r["num_qubits"]): r for r in rows}
    # Spot-check against the paper's printed values.
    assert by_key[("QAOA-regular3", 30)]["compute_zone_um"] == "90 x 90"
    assert by_key[("QAOA-regular3", 100)]["storage_zone_um"] == "150 x 300"
    assert by_key[("BV", 14)]["inter_zone_um"] == "60 x 30"
    benchmark.extra_info["rendered"] = render_table2()


def test_suite_circuit_construction(benchmark):
    def build_all_small():
        return [
            SUITE[key].build(seed=0)
            for key in (
                "QAOA-regular3-30",
                "QFT-18",
                "BV-14",
                "QSIM-rand-0.3-10",
            )
        ]

    circuits = benchmark(build_all_small)
    assert all(c.num_two_qubit_gates > 0 for c in circuits)
