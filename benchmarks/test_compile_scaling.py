"""T_comp scaling -- the Table 3 compile-time gap, measured directly.

Times each compiler's ``compile`` call alone (the quantity Table 3's
``T_comp`` columns report).  PowerMove's near-linear heuristics must beat
the Enola baseline's annealing + randomised-MIS pipeline, with the gap
growing in circuit size (the paper reports 1.9x-213x).
"""

from __future__ import annotations

import pytest

from repro.baselines import EnolaCompiler
from repro.circuits.generators import qaoa_regular
from repro.core import PowerMoveCompiler, PowerMoveConfig

from conftest import BENCH_ENOLA

SIZES = (10, 20, 30)


@pytest.mark.parametrize("n", SIZES)
def test_powermove_compile_time(benchmark, n):
    circuit = qaoa_regular(n, degree=3, seed=0)
    compiler = PowerMoveCompiler(PowerMoveConfig(seed=0))
    result = benchmark(lambda: compiler.compile(circuit))
    assert result.program.num_stages > 0
    benchmark.extra_info["num_qubits"] = n


@pytest.mark.parametrize("n", SIZES)
def test_enola_compile_time(benchmark, n):
    circuit = qaoa_regular(n, degree=3, seed=0)
    compiler = EnolaCompiler(BENCH_ENOLA)
    result = benchmark.pedantic(
        lambda: compiler.compile(circuit), rounds=2, iterations=1
    )
    assert result.program.num_stages > 0
    benchmark.extra_info["num_qubits"] = n


def test_tcomp_gap_grows_with_size(benchmark):
    """The Enola/PowerMove compile-time ratio grows with circuit size."""

    def measure():
        ratios = []
        for n in (10, 30):
            circuit = qaoa_regular(n, degree=3, seed=0)
            pm = PowerMoveCompiler(PowerMoveConfig(seed=0)).compile(circuit)
            enola = EnolaCompiler(BENCH_ENOLA).compile(circuit)
            ratios.append(enola.compile_time / max(pm.compile_time, 1e-9))
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert ratios[-1] > 1.0, "Enola must be slower to compile"
    benchmark.extra_info["tcomp_ratios_by_size"] = ratios
