"""A1-A3 -- ablations of PowerMove's own design choices (DESIGN.md).

* A1: stage-ordering weight alpha sweep (Sec. 4.2).
* A2: distance-aware vs FIFO CollMove grouping (Sec. 5.3).
* A3: intra-stage move-in-first ordering on/off (Sec. 6.1).

Each benchmark times the with-storage compilation under one knob setting
and stores the fidelity/time outcome so knob effects can be compared in
the JSON export.
"""

from __future__ import annotations

import pytest

from repro.circuits.generators import bernstein_vazirani, qaoa_regular, qsim_random
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program


def _compile_and_measure(circuit, config):
    result = PowerMoveCompiler(config).compile(circuit)
    report = evaluate_program(result.program)
    return result, report


@pytest.mark.parametrize("alpha", [0.1, 0.3, 0.5, 0.7, 0.9])
def test_a1_alpha_sweep(benchmark, alpha):
    circuit = qaoa_regular(20, degree=3, seed=0)
    config = PowerMoveConfig(alpha=alpha, seed=0)

    result, report = benchmark.pedantic(
        lambda: _compile_and_measure(circuit, config), rounds=1, iterations=1
    )
    assert report.timeline.idle_excitations == 0
    benchmark.extra_info.update(
        {
            "alpha": alpha,
            "fidelity": report.total,
            "texe_us": report.execution_time_us,
            "num_transfers": result.program.num_transfers,
        }
    )


@pytest.mark.parametrize("distance_aware", [True, False])
def test_a2_grouping_strategy(benchmark, distance_aware):
    circuit = qaoa_regular(20, degree=3, seed=0)
    config = PowerMoveConfig(distance_aware_grouping=distance_aware, seed=0)

    result, report = benchmark.pedantic(
        lambda: _compile_and_measure(circuit, config), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "distance_aware": distance_aware,
            "fidelity": report.total,
            "texe_us": report.execution_time_us,
            "num_coll_moves": result.program.num_coll_moves,
        }
    )


@pytest.mark.parametrize("ordered", [True, False])
def test_a3_intra_stage_ordering(benchmark, ordered):
    circuit = qsim_random(16, num_strings=6, seed=0)
    config = PowerMoveConfig(intra_stage_ordering=ordered, seed=0)

    result, report = benchmark.pedantic(
        lambda: _compile_and_measure(circuit, config), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "intra_stage_ordering": ordered,
            "fidelity": report.total,
            "decoherence": report.decoherence,
            "texe_us": report.execution_time_us,
        }
    )


@pytest.mark.parametrize("reorder", [True, False])
def test_a1b_stage_reordering_on_off(benchmark, reorder):
    circuit = bernstein_vazirani(20, seed=0)
    config = PowerMoveConfig(reorder_stages=reorder, seed=0)

    result, report = benchmark.pedantic(
        lambda: _compile_and_measure(circuit, config), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "reorder_stages": reorder,
            "fidelity": report.total,
            "texe_us": report.execution_time_us,
        }
    )
