"""E2 -- Figure 6: fidelity-component ablation vs qubit count.

One benchmark per panel family.  The timed body regenerates the panel's
smallest-size data point across all three scenarios; extra_info stores the
full component series for the sizes run.

Shape assertions: the with-storage excitation component is exactly 1 (the
blue area vanishes in the paper's right-hand columns), and the non-storage
decoherence component improves on Enola's (the continuous router's yellow
area shrinks).
"""

from __future__ import annotations

import pytest

from repro.analysis import figure6_panel

from conftest import BENCH_ENOLA

#: family -> sizes run by the harness (small end of each paper panel).
PANEL_SIZES = {
    "QAOA-regular3": [30],
    "QSIM-rand-0.3": [10, 20],
    "QFT": [18],
    "VQE": [30],
    "BV": [14],
}


@pytest.mark.parametrize("family", sorted(PANEL_SIZES))
def test_figure6_panel(benchmark, family):
    sizes = PANEL_SIZES[family]

    def run():
        return figure6_panel(
            family,
            seed=0,
            enola_config=BENCH_ENOLA,
            sizes=sizes,
            validate=False,
        )

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    assert panel.sizes == sizes

    for idx in range(len(sizes)):
        ws = panel.series["pm_with_storage"]
        ns = panel.series["pm_non_storage"]
        enola = panel.series["enola"]
        assert ws["excitation"][idx] == 1.0
        assert ns["decoherence"][idx] >= enola["decoherence"][idx]
        # All compilers execute the same 2Q gates.
        assert ws["two_qubit"][idx] == enola["two_qubit"][idx]

    benchmark.extra_info.update(
        {
            "family": family,
            "sizes": panel.sizes,
            "series": {
                scenario: {k: list(v) for k, v in comps.items()}
                for scenario, comps in panel.series.items()
            },
        }
    )
