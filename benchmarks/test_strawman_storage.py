"""Fig. 3(e)(f) strawman study: four storage-integration schemes.

Compares, on one excitation-dominated workload (BV), the four designs
the paper's motivation section contrasts:

* Enola (no storage)           -- excitation errors, moderate movement;
* Enola + naive storage        -- zero excitation, 4 inter-zone moves/gate;
* PowerMove non-storage        -- fewer moves, still excitation-exposed;
* PowerMove with-storage       -- zero excitation AND direct transitions.

The assertions encode the paper's Sec. 3.1 argument; extra_info carries
all four measurements for the JSON export.
"""

from __future__ import annotations

from repro.baselines import EnolaCompiler, EnolaConfig
from repro.circuits.generators import bernstein_vazirani
from repro.core import PowerMoveCompiler, PowerMoveConfig
from repro.fidelity import evaluate_program

from conftest import BENCH_ENOLA


def test_storage_integration_strawman(benchmark):
    circuit = bernstein_vazirani(20, seed=0)

    def run():
        naive_cfg = EnolaConfig(
            seed=0,
            mis_restarts=BENCH_ENOLA.mis_restarts,
            sa_iterations_per_qubit=BENCH_ENOLA.sa_iterations_per_qubit,
            naive_storage=True,
        )
        out = {}
        out["enola"] = EnolaCompiler(BENCH_ENOLA).compile(circuit)
        out["enola_naive_storage"] = EnolaCompiler(naive_cfg).compile(circuit)
        out["pm_non_storage"] = PowerMoveCompiler(
            PowerMoveConfig(use_storage=False)
        ).compile(circuit)
        out["pm_with_storage"] = PowerMoveCompiler(
            PowerMoveConfig(use_storage=True)
        ).compile(circuit)
        return {k: evaluate_program(v.program) for k, v in out.items()}

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    # Zero excitation error for both storage schemes.
    assert reports["enola_naive_storage"].timeline.idle_excitations == 0
    assert reports["pm_with_storage"].timeline.idle_excitations == 0
    # The strawman's inter-zone shuttling costs more time than plain Enola.
    assert (
        reports["enola_naive_storage"].execution_time
        > reports["enola"].execution_time
    )
    # PowerMove's integration dominates the strawman on both axes.
    assert (
        reports["pm_with_storage"].execution_time
        < reports["enola_naive_storage"].execution_time
    )
    assert (
        reports["pm_with_storage"].total
        > reports["enola_naive_storage"].total
    )

    benchmark.extra_info.update(
        {
            scheme: {
                "fidelity": report.total,
                "texe_us": report.execution_time_us,
                "excitations": report.timeline.idle_excitations,
            }
            for scheme, report in reports.items()
        }
    )
