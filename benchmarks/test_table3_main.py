"""E1 -- Table 3: main results (fidelity, T_exe, T_comp, improvements).

One benchmark per suite row (small paper sizes, all seven families): the
timed body is the *full three-scenario experiment* -- Enola, PowerMove
non-storage, PowerMove with-storage -- and the extra_info carries the
Table 3 row metrics so the JSON export reproduces the table.

The paper-shape assertions encode the qualitative claims: PowerMove's
continuous router beats Enola on execution time, the storage zone
eliminates excitation error, and with-storage fidelity beats Enola.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_benchmark
from repro.analysis.tables import PAPER_TABLE3, Table3Row
from repro.benchsuite import SUITE

from conftest import BENCH_ENOLA, BENCH_KEYS


@pytest.mark.parametrize("key", BENCH_KEYS)
def test_table3_row(benchmark, key):
    spec = SUITE[key]

    def run():
        return run_benchmark(
            spec,
            seed=0,
            enola_config=BENCH_ENOLA,
            validate=False,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = Table3Row.from_result(result)

    # Paper-shape checks (Table 3 columns).
    assert row.ns_texe_us < row.enola_texe_us, "continuous router speedup"
    assert row.fidelity_improvement > 1.0, "with-storage fidelity wins"
    ws = result["pm_with_storage"].fidelity
    assert ws.timeline.idle_excitations == 0, "storage kills excitation"

    benchmark.extra_info.update(
        {
            "benchmark": key,
            "enola_fidelity": row.enola_fidelity,
            "ns_fidelity": row.ns_fidelity,
            "ws_fidelity": row.ws_fidelity,
            "fidelity_improvement": row.fidelity_improvement,
            "enola_texe_us": row.enola_texe_us,
            "ns_texe_us": row.ns_texe_us,
            "ws_texe_us": row.ws_texe_us,
            "texe_improvement": row.texe_improvement,
            "tcomp_improvement": row.tcomp_improvement,
            "paper_row": PAPER_TABLE3.get(key),
        }
    )
