"""Shared configuration for the benchmark harness.

Benchmarks run the *same code paths* as the paper's evaluation but on
scaled-down instances so the harness completes in minutes; run
``examples/reproduce_paper.py`` for the full-scale (slow) regeneration.
Every benchmark stores its reproduction metrics in
``benchmark.extra_info`` so the JSON export carries the paper-facing
numbers, not only timings.
"""

from __future__ import annotations

import pytest

from repro.baselines import EnolaConfig

#: Enola knobs for the harness: cheap enough for CI, same algorithms.
BENCH_ENOLA = EnolaConfig(seed=0, mis_restarts=3, sa_iterations_per_qubit=30)

#: Benchmark-suite rows the harness runs per family (small paper sizes).
BENCH_KEYS = (
    "QAOA-regular3-30",
    "QAOA-regular4-30",
    "QAOA-random-20",
    "QFT-18",
    "BV-14",
    "VQE-30",
    "QSIM-rand-0.3-10",
)


@pytest.fixture
def enola_config() -> EnolaConfig:
    """Harness-wide Enola configuration."""
    return BENCH_ENOLA
